"""Clock-sync barrier algebra for conservative sharded simulation.

The sharded engine (:mod:`repro.sim.shard`) partitions one scenario's
topology into per-AS subtree shards, each running its own event loop.
Correctness of that mode rests on one classic invariant — the
Chandy–Misra/Bryant conservative condition: a shard may only dispatch
an event at time ``t`` once every peer shard has *promised* (via its
clock or a null message) that nothing can arrive across a boundary
channel before ``t``.  With ``lookahead`` equal to the minimum
cross-shard link latency, a shard whose clock promise is ``c`` cannot
deliver anything before ``c + lookahead``, so the safe-advance window
of shard ``i`` is::

    safe_until(i) = min over peers j of (promise(j) + lookahead)

:class:`ClockBarrier` is that algebra, kept pure (no scheduler, no
processes) so both execution modes — the in-process windowed merge loop
and the forked worker mode — validate against the *same* object, and
so the hypothesis property suite can drive it directly with fuzzed
promise/dispatch sequences.

Positive lookahead is also the liveness argument: the shard holding the
globally earliest event always satisfies the condition (every peer's
promise is at least that event's time), so some shard can always
advance and the barrier cannot deadlock.  With at least one zero-latency
boundary channel, ``lookahead`` degrades to 0 and same-instant
cross-shard events would stall; the shard planner therefore refuses a
cut whose lookahead is not strictly positive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

__all__ = ["BarrierError", "ClockBarrier"]

_INF = float("inf")


class BarrierError(RuntimeError):
    """A conservative invariant was violated (strict mode only)."""


class ClockBarrier:
    """Tracks per-shard clock promises and the safe-advance windows.

    Parameters
    ----------
    shards:
        Shard labels; index order is the shard id used everywhere else.
        Needs at least two shards — a barrier with zero peers is
        meaningless, and callers (``make_sharded_simulator``) fall back
        to the plain serial loop instead of constructing one.
    lookahead:
        The minimum cross-shard channel latency (seconds).  Must be
        strictly positive: it is both the safety margin that makes the
        window non-trivial and the liveness argument.
    strict:
        When True (default) an invariant violation raises
        :class:`BarrierError`; when False it is only counted in
        :attr:`violations` (used by the inline engine, whose global
        dispatch order makes violations impossible — the counter is the
        regression witness).
    """

    __slots__ = (
        "labels",
        "lookahead",
        "strict",
        "_promises",
        "_last_dispatch",
        "dispatches",
        "cross_schedules",
        "acausal_cross",
        "violations",
        "min_window",
    )

    def __init__(
        self, shards: Sequence[str], lookahead: float, *, strict: bool = True
    ) -> None:
        labels = [str(s) for s in shards]
        if len(labels) < 2:
            raise BarrierError(
                f"a clock barrier needs at least 2 shards (got {len(labels)}); "
                "degenerate partitions must fall back to the serial loop"
            )
        if len(set(labels)) != len(labels):
            raise BarrierError(f"duplicate shard labels: {labels}")
        if not lookahead > 0.0:
            raise BarrierError(
                f"lookahead must be strictly positive (got {lookahead}); "
                "a zero-latency boundary channel admits no safe window"
            )
        self.labels: List[str] = labels
        self.lookahead = float(lookahead)
        self.strict = strict
        # promise[i]: shard i cannot cause any local effect before this
        # time, hence nothing can cross a boundary out of i before
        # promise[i] + lookahead.
        self._promises: List[float] = [0.0] * len(labels)
        # Per-shard last dispatched timestamp (timestamp-order witness).
        self._last_dispatch: List[float] = [-_INF] * len(labels)
        self.dispatches = 0
        self.cross_schedules = 0
        self.acausal_cross = 0
        self.violations = 0
        self.min_window = _INF

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.labels)

    def promise(self, shard: int, t: float) -> None:
        """Advance ``shard``'s clock promise to ``t`` (monotone).

        A promise may never regress: once a shard has announced it is
        past ``t``, peers may have advanced on the strength of that
        announcement.  Regressions are the bug class this barrier
        exists to catch, so they count as violations even in
        non-strict mode.
        """
        current = self._promises[shard]
        if t < current:
            self._violate(
                f"shard {self.labels[shard]!r} promise regressed "
                f"{current:.9f} -> {t:.9f}"
            )
            return
        self._promises[shard] = t

    def advance_clock(self, t: float) -> None:
        """Promise every shard's clock forward to global time ``t``.

        The inline windowed engine dispatches in exact global
        ``(time, seq)`` order, so at the moment it dispatches an event at
        ``t`` *every* shard's event loop is provably past ``t`` — the
        global clock is a valid conservative promise for all of them.
        Regressions are ignored (a shard that already promised further,
        e.g. via its own dispatches, keeps the stronger promise).
        """
        promises = self._promises
        for i, p in enumerate(promises):
            if t > p:
                promises[i] = t

    def safe_until(self, shard: int) -> float:
        """The conservative safe-advance bound for ``shard``.

        ``min`` over every *peer* of ``promise(peer) + lookahead``; the
        shard's own promise never constrains itself.
        """
        promises = self._promises
        bound = _INF
        for j, p in enumerate(promises):
            if j == shard:
                continue
            horizon = p + self.lookahead
            if horizon < bound:
                bound = horizon
        return bound

    def check_dispatch(self, shard: int, t: float) -> bool:
        """Validate (and account) one event dispatch at time ``t``.

        Enforces the two conservative invariants the property suite
        fuzzes: per-shard timestamp order (``t`` never precedes the
        shard's previous dispatch) and the safe window (``t`` never
        exceeds ``min(peer promises) + lookahead``).  Also folds the
        observed slack into :attr:`min_window`.  Returns True when the
        dispatch is admissible.
        """
        ok = True
        if t < self._last_dispatch[shard]:
            self._violate(
                f"shard {self.labels[shard]!r} dispatched out of timestamp "
                f"order: {t:.9f} after {self._last_dispatch[shard]:.9f}"
            )
            ok = False
        bound = self.safe_until(shard)
        if t > bound:
            self._violate(
                f"shard {self.labels[shard]!r} dispatched t={t:.9f} beyond "
                f"its safe window {bound:.9f} "
                f"(min peer promise + lookahead {self.lookahead:.9f})"
            )
            ok = False
        if ok:
            slack = bound - t
            if slack < self.min_window:
                self.min_window = slack
            self._last_dispatch[shard] = t
            if t > self._promises[shard]:
                self._promises[shard] = t
            self.dispatches += 1
        return ok

    def note_cross(self, src: int, dst: int, t: float, now: float) -> bool:
        """Account a cross-shard schedule (src's event scheduling into dst).

        Returns True when the schedule honours src's standing promise —
        ``t >= now + lookahead`` — i.e. a real message-passing run could
        have carried it on a boundary channel.  Earlier schedules are
        *acausal*: they would arrive inside a window the receiver may
        already have executed.  The inline engine (which dispatches in
        exact global order) counts rather than fails them, and the
        golden suites assert the count is zero for every partition the
        planner emits.
        """
        self.cross_schedules += 1
        # Tolerance: boundary timestamps are sums of float link delays;
        # one ulp-scale epsilon keeps exact-lookahead hops causal.
        if t + 1e-12 < now + self.lookahead:
            self.acausal_cross += 1
            return False
        return True

    def stats(self) -> Dict[str, Any]:
        """JSON-ready barrier accounting (folded into run artifacts)."""
        return {
            "shards": list(self.labels),
            "lookahead": self.lookahead,
            "dispatches": self.dispatches,
            "cross_schedules": self.cross_schedules,
            "acausal_cross": self.acausal_cross,
            "violations": self.violations,
            "min_window": None if self.min_window is _INF else self.min_window,
        }

    # ------------------------------------------------------------------
    def _violate(self, message: str) -> None:
        self.violations += 1
        if self.strict:
            raise BarrierError(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockBarrier(shards={len(self.labels)}, "
            f"lookahead={self.lookahead:.6f}, dispatches={self.dispatches}, "
            f"violations={self.violations})"
        )
