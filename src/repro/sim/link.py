"""Links: bandwidth + propagation delay + drop-tail buffering.

A :class:`Link` is full-duplex and is modeled as two independent
simplex :class:`Channel`s, as in ns-2's duplex-link.  Each channel
serializes packets at its bandwidth, holds packets awaiting
transmission in a drop-tail queue, and delivers each packet to the far
node one propagation delay after its last bit is sent.

This module is the simulator's hot path; it avoids allocation beyond
the unavoidable scheduler entries.  An idle channel takes the *fused*
path: one event at ``now + tx_time + delay`` performs the send
accounting and the delivery together, replacing the classic
``_tx_done -> _deliver`` two-event chain.  The chain is only needed
when the queue has backlog to drain, because that is the only case
where something has to happen at the end of serialization (start the
next transmission) distinct from the delivery instant.  Send/byte
counters are then updated at delivery time rather than at
end-of-serialization — at most ``delay`` seconds later than the classic
path, which is well inside every consumer's observation interval (the
pushback/defense review timers sample at 100ms+).

Channels are also the *shard boundary* of forked sharded execution
(:mod:`repro.sim.shard`): a cross-shard send is intercepted at the
scheduler seam when the channel schedules its delivery-side callback
(``_fused_done`` on the fused path, ``_deliver`` on the classic one)
and carried to the destination shard as a message.  That works because
(a) every delivery is scheduled at least ``tx_time + delay > delay``
ahead of ``now``, which is what gives the conservative barrier its
lookahead, and (b) this module never stores the delivery event handle —
queueing, busy-tracking, and tail-drop accounting all stay on the
sending side, so diverting the callback loses nothing.  Keep both
properties when touching the scheduling calls below.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Channel", "Link"]


class Channel:
    """Simplex channel from ``src`` to ``dst``.

    Parameters
    ----------
    bandwidth_bps:
        Transmission rate in bits per second.
    delay:
        Propagation delay in seconds.
    queue_limit:
        Drop-tail buffer size in packets (awaiting transmission).
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "bandwidth_bps",
        "delay",
        "queue",
        "_busy_until",
        "_draining",
        "packets_sent",
        "bytes_sent",
        "packets_dropped",
        "drop_hook",
        "link",
    )

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay: float,
        queue_limit: int = 50,
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        if delay < 0:
            raise ValueError(f"delay must be >= 0 (got {delay})")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        # Pluggable discipline: drop-tail by default, RED on request.
        self.queue = queue if queue is not None else DropTailQueue(queue_limit)
        # Fused-path state: the serializer is busy through _busy_until;
        # _draining marks that a classic _tx_done chain is in flight and
        # will pull from the queue when it completes.
        self._busy_until = 0.0
        self._draining = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        # Optional observer called as drop_hook(packet) on a tail drop.
        self.drop_hook: Optional[Callable[[Packet], None]] = None
        self.link: Optional["Link"] = None  # set by Link

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Hand a packet to the channel; False if it was tail-dropped."""
        sim = self.sim
        now = sim.now
        if now >= self._busy_until and not self._draining:
            # Idle channel: fuse serialization end and delivery into a
            # single event — no queue state can change in between, so
            # nothing needs to happen at the serialization boundary.
            tx_time = pkt.size * 8.0 / self.bandwidth_bps
            self._busy_until = now + tx_time
            sim.schedule(tx_time + self.delay, self._fused_done, pkt)
            return True
        if not self.queue.push(pkt):
            self.packets_dropped += 1
            if self.drop_hook is not None:
                self.drop_hook(pkt)
            pool = sim.packet_pool
            if pool is not None:
                pool.release(pkt)
            return False
        if not self._draining:
            # Backlog behind a fused transmission: arrange for the
            # queue to start draining the instant the serializer frees
            # up (the in-flight fused event will not pull the queue).
            self._draining = True
            sim.schedule_at(self._busy_until, self._drain)
        return True

    def _fused_done(self, pkt: Packet) -> None:
        # Send accounting happens at delivery time on the fused path
        # (at most `delay` later than the classic serialization
        # boundary; see the module docstring).
        self.packets_sent += 1
        self.bytes_sent += pkt.size
        pkt.hops += 1
        self.dst.receive(pkt, self)

    def _drain(self) -> None:
        nxt = self.queue.pop()
        if nxt is None:
            self._draining = False
        else:
            self._transmit(nxt)

    def _transmit(self, pkt: Packet) -> None:
        self._draining = True
        tx_time = pkt.size * 8.0 / self.bandwidth_bps
        self._busy_until = self.sim.now + tx_time
        self.sim.schedule(tx_time, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += pkt.size
        self.sim.schedule(self.delay, self._deliver, pkt)
        nxt = self.queue.pop()
        if nxt is not None:
            self._transmit(nxt)
        else:
            self._draining = False

    def _deliver(self, pkt: Packet) -> None:
        pkt.hops += 1
        self.dst.receive(pkt, self)

    # ------------------------------------------------------------------
    @property
    def utilization_bytes(self) -> int:
        return self.bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.src.name}->{self.dst.name}, "
            f"{self.bandwidth_bps/1e6:.2f}Mb/s, {self.delay*1e3:.1f}ms)"
        )


class Link:
    """Full-duplex link between two nodes (a pair of channels)."""

    __slots__ = ("a", "b", "ab", "ba")

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        bandwidth_bps: float,
        delay: float,
        queue_limit: int = 50,
        queue_factory: Optional[Callable[[], DropTailQueue]] = None,
    ) -> None:
        self.a = a
        self.b = b
        q_ab = queue_factory() if queue_factory is not None else None
        q_ba = queue_factory() if queue_factory is not None else None
        self.ab = Channel(sim, a, b, bandwidth_bps, delay, queue_limit, q_ab)
        self.ba = Channel(sim, b, a, bandwidth_bps, delay, queue_limit, q_ba)
        self.ab.link = self
        self.ba.link = self
        a.attach(self.ab, self.ba)
        b.attach(self.ba, self.ab)

    def channel_from(self, node: "Node") -> Channel:
        """The simplex channel whose sender is ``node``."""
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def channel_to(self, node: "Node") -> Channel:
        """The simplex channel whose receiver is ``node``."""
        if node is self.a:
            return self.ba
        if node is self.b:
            return self.ab
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def other(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a.name} <-> {self.b.name})"
