"""Links: bandwidth + propagation delay + drop-tail buffering.

A :class:`Link` is full-duplex and is modeled as two independent
simplex :class:`Channel`s, as in ns-2's duplex-link.  Each channel
serializes packets at its bandwidth, holds packets awaiting
transmission in a drop-tail queue, and delivers each packet to the far
node one propagation delay after its last bit is sent.

This module is the simulator's hot path; it avoids allocation beyond
the unavoidable scheduler entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Channel", "Link"]


class Channel:
    """Simplex channel from ``src`` to ``dst``.

    Parameters
    ----------
    bandwidth_bps:
        Transmission rate in bits per second.
    delay:
        Propagation delay in seconds.
    queue_limit:
        Drop-tail buffer size in packets (awaiting transmission).
    """

    __slots__ = (
        "sim",
        "src",
        "dst",
        "bandwidth_bps",
        "delay",
        "queue",
        "_busy",
        "packets_sent",
        "bytes_sent",
        "packets_dropped",
        "drop_hook",
        "link",
    )

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay: float,
        queue_limit: int = 50,
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive (got {bandwidth_bps})")
        if delay < 0:
            raise ValueError(f"delay must be >= 0 (got {delay})")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        # Pluggable discipline: drop-tail by default, RED on request.
        self.queue = queue if queue is not None else DropTailQueue(queue_limit)
        self._busy = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        # Optional observer called as drop_hook(packet) on a tail drop.
        self.drop_hook: Optional[Callable[[Packet], None]] = None
        self.link: Optional["Link"] = None  # set by Link

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Hand a packet to the channel; False if it was tail-dropped."""
        if self._busy:
            if not self.queue.push(pkt):
                self.packets_dropped += 1
                if self.drop_hook is not None:
                    self.drop_hook(pkt)
                return False
            return True
        self._transmit(pkt)
        return True

    def _transmit(self, pkt: Packet) -> None:
        self._busy = True
        tx_time = pkt.size * 8.0 / self.bandwidth_bps
        self.sim.schedule(tx_time, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += pkt.size
        self.sim.schedule(self.delay, self._deliver, pkt)
        nxt = self.queue.pop()
        if nxt is not None:
            self._transmit(nxt)
        else:
            self._busy = False

    def _deliver(self, pkt: Packet) -> None:
        pkt.hops += 1
        self.dst.receive(pkt, self)

    # ------------------------------------------------------------------
    @property
    def utilization_bytes(self) -> int:
        return self.bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.src.name}->{self.dst.name}, "
            f"{self.bandwidth_bps/1e6:.2f}Mb/s, {self.delay*1e3:.1f}ms)"
        )


class Link:
    """Full-duplex link between two nodes (a pair of channels)."""

    __slots__ = ("a", "b", "ab", "ba")

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        bandwidth_bps: float,
        delay: float,
        queue_limit: int = 50,
        queue_factory: Optional[Callable[[], DropTailQueue]] = None,
    ) -> None:
        self.a = a
        self.b = b
        q_ab = queue_factory() if queue_factory is not None else None
        q_ba = queue_factory() if queue_factory is not None else None
        self.ab = Channel(sim, a, b, bandwidth_bps, delay, queue_limit, q_ab)
        self.ba = Channel(sim, b, a, bandwidth_bps, delay, queue_limit, q_ba)
        self.ab.link = self
        self.ba.link = self
        a.attach(self.ab, self.ba)
        b.attach(self.ba, self.ab)

    def channel_from(self, node: "Node") -> Channel:
        """The simplex channel whose sender is ``node``."""
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def channel_to(self, node: "Node") -> Channel:
        """The simplex channel whose receiver is ``node``."""
        if node is self.a:
            return self.ba
        if node is self.b:
            return self.ab
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def other(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a.name} <-> {self.b.name})"
