"""Packet model.

A packet carries a (possibly spoofed) source address, a destination
address, and the small set of header fields the paper's mechanisms
read or write:

* ``mark`` — the edge-router ID field used by the destination-end
  marking variant of ingress identification (Section 5.1; the paper
  reuses the 16-bit IP ID field, which is safe because only honeypot
  traffic — traffic that will be discarded anyway — is marked).
* ``ttl`` — used to authenticate hop-by-hop control messages the way
  ACC/Pushback does (only TTL=255 messages are accepted, Section 5.3).
* ``true_src`` — ground-truth origin, for measurement only; no protocol
  logic may read it (enforced by the defense implementations reading
  only ``src``).

Addresses are plain integers (node IDs); an address space abstraction
would add cost in the hot path without adding fidelity.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Optional

__all__ = ["Packet", "PacketKind", "DEFAULT_TTL"]

DEFAULT_TTL = 255

_packet_uid = count()


class PacketKind:
    """Packet kind tags (plain strings; cheap to compare, easy to trace)."""

    DATA = "data"
    SYN = "syn"
    SYNACK = "synack"
    ACK = "ack"
    CONTROL = "control"


class Packet:
    """A simulated network packet.

    Parameters
    ----------
    src:
        Claimed source address (may be spoofed).
    dst:
        Destination address.
    size:
        Size in bytes (headers included).
    true_src:
        Ground-truth originating node; defaults to ``src``.
    flow:
        Flow label for per-flow accounting (e.g. ``("cbr", 17)``).
    kind:
        One of :class:`PacketKind`; defaults to DATA.
    payload:
        Arbitrary payload object for control messages.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "size",
        "true_src",
        "flow",
        "kind",
        "mark",
        "ttl",
        "payload",
        "created_at",
        "hops",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        size: int,
        *,
        true_src: Optional[int] = None,
        flow: Any = None,
        kind: str = PacketKind.DATA,
        payload: Any = None,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
    ) -> None:
        self.uid = next(_packet_uid)
        self.src = src
        self.dst = dst
        self.size = size
        self.true_src = src if true_src is None else true_src
        self.flow = flow
        self.kind = kind
        self.mark = 0
        self.ttl = ttl
        self.payload = payload
        self.created_at = created_at
        self.hops = 0

    @property
    def spoofed(self) -> bool:
        """True if the claimed source differs from the true origin."""
        return self.src != self.true_src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spoof = "*" if self.spoofed else ""
        return (
            f"Packet(#{self.uid} {self.src}{spoof}->{self.dst} "
            f"{self.kind} {self.size}B ttl={self.ttl})"
        )
