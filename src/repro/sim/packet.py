"""Packet model.

A packet carries a (possibly spoofed) source address, a destination
address, and the small set of header fields the paper's mechanisms
read or write:

* ``mark`` — the edge-router ID field used by the destination-end
  marking variant of ingress identification (Section 5.1; the paper
  reuses the 16-bit IP ID field, which is safe because only honeypot
  traffic — traffic that will be discarded anyway — is marked).
* ``ttl`` — used to authenticate hop-by-hop control messages the way
  ACC/Pushback does (only TTL=255 messages are accepted, Section 5.3).
* ``true_src`` — ground-truth origin, for measurement only; no protocol
  logic may read it (enforced by the defense implementations reading
  only ``src``).

Addresses are plain integers (node IDs); an address space abstraction
would add cost in the hot path without adding fidelity.

Recycling: :class:`PacketPool` (opt-in via ``Simulator(packet_pool=...)``
or ``REPRO_PACKET_POOL=1``) hands delivered/dropped packets back to the
sources instead of the garbage collector.  A pooled acquire draws a
*fresh* uid from the same global counter as a plain construction, so uid
sequences are identical with and without the pool.  The contract is
borrow-only: consumers that retain a packet reference past the delivery
callback (traces, captures) must copy the fields they need — the object
may be reissued to the next flow.
"""

from __future__ import annotations

from itertools import count
from typing import Any, List, Optional

__all__ = ["Packet", "PacketKind", "PacketPool", "DEFAULT_TTL"]

DEFAULT_TTL = 255

_packet_uid = count()


class PacketKind:
    """Packet kind tags (plain strings; cheap to compare, easy to trace)."""

    DATA = "data"
    SYN = "syn"
    SYNACK = "synack"
    ACK = "ack"
    CONTROL = "control"


class Packet:
    """A simulated network packet.

    Parameters
    ----------
    src:
        Claimed source address (may be spoofed).
    dst:
        Destination address.
    size:
        Size in bytes (headers included).
    true_src:
        Ground-truth originating node; defaults to ``src``.
    flow:
        Flow label for per-flow accounting (e.g. ``("cbr", 17)``).
    kind:
        One of :class:`PacketKind`; defaults to DATA.
    payload:
        Arbitrary payload object for control messages.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "size",
        "true_src",
        "flow",
        "kind",
        "mark",
        "ttl",
        "payload",
        "created_at",
        "hops",
        "_in_pool",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        size: int,
        *,
        true_src: Optional[int] = None,
        flow: Any = None,
        kind: str = PacketKind.DATA,
        payload: Any = None,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
    ) -> None:
        self.uid = next(_packet_uid)
        self.src = src
        self.dst = dst
        self.size = size
        self.true_src = src if true_src is None else true_src
        self.flow = flow
        self.kind = kind
        self.mark = 0
        self.ttl = ttl
        self.payload = payload
        self.created_at = created_at
        self.hops = 0
        self._in_pool = False

    @property
    def spoofed(self) -> bool:
        """True if the claimed source differs from the true origin."""
        return self.src != self.true_src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spoof = "*" if self.spoofed else ""
        return (
            f"Packet(#{self.uid} {self.src}{spoof}->{self.dst} "
            f"{self.kind} {self.size}B ttl={self.ttl})"
        )


class PacketPool:
    """Recycling pool for :class:`Packet` objects (borrow-only contract).

    ``acquire`` either reuses a released packet — resetting *every*
    field, including ``mark``/``ttl``/``hops``/``payload``, so no header
    state can leak between flows — or constructs a new one.  Either way
    the packet gets a fresh uid from the global counter, so traces and
    journals are identical whether or not the pool is enabled.

    ``release`` is called by the delivery/drop endpoints (host delivery
    of DATA packets, channel tail drops).  Router-filtered packets are
    *not* released: a defense that filtered a packet may still hold it
    (e.g. for diversion to a honeypot or marking statistics).
    """

    __slots__ = ("_free", "max_free", "created", "reused", "recycled")

    def __init__(self, max_free: int = 4096) -> None:
        self._free: List[Packet] = []
        self.max_free = max_free
        self.created = 0  # acquires served by construction
        self.reused = 0  # acquires served from the pool
        self.recycled = 0  # releases accepted into the pool

    def acquire(
        self,
        src: int,
        dst: int,
        size: int,
        *,
        true_src: Optional[int] = None,
        flow: Any = None,
        kind: str = PacketKind.DATA,
        payload: Any = None,
        ttl: int = DEFAULT_TTL,
        created_at: float = 0.0,
    ) -> Packet:
        free = self._free
        if free:
            pkt = free.pop()
            pkt._in_pool = False
            pkt.uid = next(_packet_uid)
            pkt.src = src
            pkt.dst = dst
            pkt.size = size
            pkt.true_src = src if true_src is None else true_src
            pkt.flow = flow
            pkt.kind = kind
            pkt.mark = 0
            pkt.ttl = ttl
            pkt.payload = payload
            pkt.created_at = created_at
            pkt.hops = 0
            self.reused += 1
            return pkt
        self.created += 1
        return Packet(
            src,
            dst,
            size,
            true_src=true_src,
            flow=flow,
            kind=kind,
            payload=payload,
            ttl=ttl,
            created_at=created_at,
        )

    def release(self, pkt: Packet) -> None:
        """Return a packet to the pool (idempotent per acquire)."""
        if pkt._in_pool:
            return
        free = self._free
        if len(free) >= self.max_free:
            return
        pkt._in_pool = True
        # Drop object references eagerly so the pool never pins payloads
        # or flow labels alive.
        pkt.payload = None
        pkt.flow = None
        free.append(pkt)
        self.recycled += 1

    def stats(self) -> dict:
        return {
            "created": self.created,
            "reused": self.reused,
            "recycled": self.recycled,
            "free": len(self._free),
        }

    def __len__(self) -> int:
        return len(self._free)
