"""Discrete-event simulation engine.

A minimal, fast event scheduler in the style of ns-2's event loop: a
binary heap of ``(time, sequence, Event)`` entries.  The sequence number
breaks ties FIFO so that events scheduled for the same instant fire in
the order they were scheduled, which keeps simulations deterministic.

The engine is deliberately callback-based (no generator processes): the
paper's workloads are packet-level CBR flows and timer-driven control
protocols, for which callbacks are both faster and simpler than a
process abstraction.  Helper classes (:class:`Timer`,
:func:`Simulator.every`) cover the recurring-timer patterns the defense
protocols need.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: a cancelled event stays in the heap but is
    skipped when popped.  This is O(1) and is the standard trick for
    heap-based schedulers.
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, fn={name}, {state})"


class Simulator:
    """Event-driven simulator clock and scheduler.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        # Self-profiling (repro.obs.EngineProfiler.attach sets this).
        # run() dispatches to an instrumented copy of the loop when a
        # profiler is attached, so the normal loop pays nothing.
        self.profiler: Optional[Any] = None
        # Flight recorder (repro.obs.Telemetry.bind sets this): run()
        # brackets each invocation with sim_run_start/sim_run_end
        # journal events.  None costs a single attribute test per run.
        self.journal: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        ev = Event(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> "Timer":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        ``start`` is the absolute time of the first firing (defaults to
        ``now + interval``).  ``jitter_fn``, if given, is called before
        each firing and its return value is added to the nominal delay —
        used e.g. to de-synchronize periodic control loops.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        timer = Timer(self, interval, fn, args, jitter_fn)
        first = (self.now + interval) if start is None else start
        timer._arm(first)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        Runs until the heap is empty, or until the clock would pass
        ``until`` (the clock is then advanced to exactly ``until``).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        journal = self.journal
        if journal is not None:
            before = self.events_processed
            journal.record("sim_run_start", pending=len(self._heap))
        if self.profiler is not None:
            self._run_profiled(until)
        else:
            self._run_plain(until)
        if journal is not None:
            journal.record(
                "sim_run_end", events=self.events_processed - before
            )

    def _run_plain(self, until: Optional[float] = None) -> None:
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap:
                time, _, ev = heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = time
                ev.fn(*ev.args)
                self.events_processed += 1
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def _run_profiled(self, until: Optional[float] = None) -> None:
        """The same event loop as :meth:`run`, instrumented for the
        attached profiler: wall-clock timing and the event-heap
        high-water mark.  Kept as a separate copy so the unprofiled
        loop carries zero instrumentation cost."""
        # reprolint: ignore[RPL002] -- self-profiling measures real wall
        # time for repro.obs; it never feeds back into simulated state
        from time import perf_counter

        prof = self.profiler
        self._running = True
        self._stopped = False
        heap = self._heap
        processed = 0
        hwm = len(heap)
        sim_start = self.now
        wall_start = perf_counter()  # reprolint: ignore[RPL002] -- profiler
        try:
            while heap:
                if len(heap) > hwm:
                    hwm = len(heap)
                time, _, ev = heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = time
                ev.fn(*ev.args)
                processed += 1
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
            self.events_processed += processed
            prof.note_heap(hwm)
            prof.record_run(
                processed,
                perf_counter() - wall_start,  # reprolint: ignore[RPL002]
                self.now - sim_start,
            )

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of events in the heap (including lazily cancelled ones)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={len(self._heap)})"


class Timer:
    """A recurring timer created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "fn", "args", "jitter_fn", "_event", "cancelled")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        args: tuple,
        jitter_fn: Optional[Callable[[], float]],
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self.cancelled = False

    def _arm(self, at: float) -> None:
        if self.jitter_fn is not None:
            at = at + self.jitter_fn()
        at = max(at, self.sim.now)
        self._event = self.sim.schedule_at(at, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        if not self.cancelled:
            self._arm(self.sim.now + self.interval)

    def cancel(self) -> None:
        """Stop the timer; any armed firing is cancelled."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
