"""Discrete-event simulation engine.

A minimal, fast event scheduler in the style of ns-2's event loop.
Pending events are ``(time, sequence, Event)`` entries in a pluggable
scheduler structure (see :mod:`repro.sim.scheduler`): the classic
binary heap, or a calendar queue for very large event populations.
The sequence number breaks ties FIFO so that events scheduled for the
same instant fire in the order they were scheduled, which keeps
simulations deterministic — and because entries order totally, every
scheduler dispatches the *identical* event sequence, a property the
causal journal verifies end-to-end (``repro replay --check``).

Scheduler selection (``Simulator(scheduler=...)``):

* ``"heap"`` / ``"calendar"`` — force one structure;
* ``"auto"`` (default) — start on the heap, migrate once to the
  calendar queue if the live pending population ever exceeds
  :data:`~repro.sim.scheduler.AUTO_CALENDAR_THRESHOLD`;
* a scheduler instance — use it as-is.

The ``REPRO_SCHEDULER`` environment variable supplies the default
policy when the constructor argument is omitted.

The engine is deliberately callback-based (no generator processes): the
paper's workloads are packet-level CBR flows and timer-driven control
protocols, for which callbacks are both faster and simpler than a
process abstraction.  Helper classes (:class:`Timer`,
:func:`Simulator.every`) cover the recurring-timer patterns the defense
protocols need.

Allocation relief: dispatched :class:`Event` objects are recycled
through a per-simulator freelist (``REPRO_EVENT_FREELIST=0`` disables).
The contract is that an Event handle is only meaningful until its
callback has run — cancelling after that is a no-op on the handle, but
holders must drop fired-event references promptly (every in-tree holder
reassigns or clears on fire) because the object may be reissued by a
later ``schedule()``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Union

from .barrier import BarrierError, ClockBarrier
from .scheduler import (
    AUTO_CALENDAR_THRESHOLD,
    CalendarQueueScheduler,
    HeapScheduler,
    Scheduler,
)

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "SimulationError",
    "BarrierError",
    "ClockBarrier",
]

# Cap on recycled Event objects kept per simulator; bounds memory after
# a scheduling burst while still absorbing the steady-state churn.
_FREELIST_MAX = 8192


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling in the past)."""


def _retired() -> None:  # pragma: no cover - placeholder callback
    """Callback parked on freelist events so a stale fire is harmless."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: a cancelled event stays in the scheduler but
    is skipped when popped.  This is O(1) and is the standard trick for
    heap-based schedulers; the engine keeps a separate live counter so
    :meth:`Simulator.pending` can still report the true pending count.

    A handle is valid until its callback runs; after that ``cancel()``
    is a no-op and the object may be recycled for a later ``schedule()``
    call, so holders must not retain fired-event references.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_queued", "_sim")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queued = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or not self._queued:
            self.cancelled = True
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, fn={name}, {state})"


class Simulator:
    """Event-driven simulator clock and scheduler.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(
        self,
        scheduler: Union[str, Scheduler, None] = None,
        packet_pool: Union[bool, Any, None] = None,
    ) -> None:
        self.now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        # Live (non-cancelled) pending events; see pending(live=True).
        self._live: int = 0
        # Self-profiling (repro.obs.EngineProfiler.attach sets this).
        # run() dispatches to an instrumented copy of the loop when a
        # profiler is attached, so the normal loop pays nothing.
        self.profiler: Optional[Any] = None
        # Flight recorder (repro.obs.Telemetry.bind sets this): run()
        # brackets each invocation with sim_run_start/sim_run_end
        # journal events.  None costs a single attribute test per run.
        self.journal: Optional[Any] = None
        # Metrics registry (repro.obs.Telemetry.bind sets this); used
        # for low-rate operational counters such as timer_jitter_clamped.
        self.metrics: Optional[Any] = None
        # Live streamer (repro.obs.stream.TelemetryStreamer.attach sets
        # this): the instrumented loop pulses it at stride boundaries.
        # Snapshots only read engine state — never schedule events —
        # so the journal is identical with or without a stream.
        self.stream: Optional[Any] = None
        self.timer_jitter_clamps: int = 0
        # Cross-shard intercept seam (repro.sim.shard forked workers
        # install this).  When set, schedule_at offers every schedule to
        # the shunt first; a True return means the event was captured as
        # an outgoing boundary message and must not enter the local
        # scheduler.  None costs one attribute test per schedule.
        self._shunt: Optional[Callable[[float, Callable[..., Any], tuple], bool]] = (
            None
        )

        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER") or "auto"
        if isinstance(scheduler, str):
            policy = scheduler.strip().lower()
            if policy == "calendar":
                self._sched: Scheduler = CalendarQueueScheduler()
            elif policy in ("auto", "heap"):
                self._sched = HeapScheduler()
            else:
                raise SimulationError(
                    f"unknown scheduler policy {scheduler!r} "
                    "(expected 'auto', 'heap' or 'calendar')"
                )
            self._auto = policy == "auto"
        else:
            self._sched = scheduler
            policy = getattr(scheduler, "name", "custom")
            self._auto = False
        self.scheduler_policy: str = policy

        # Event freelist (allocation relief on the hot path).
        self._free: List[Event] = []
        self._free_max = (
            0
            if os.environ.get("REPRO_EVENT_FREELIST", "1") in ("0", "false", "no")
            else _FREELIST_MAX
        )

        # Optional packet recycling pool (repro.sim.packet.PacketPool).
        # Off by default: consumers that retain packet references past
        # delivery must copy (borrow-only contract, see packet.py).
        if packet_pool is None:
            packet_pool = os.environ.get("REPRO_PACKET_POOL", "") in (
                "1",
                "true",
                "yes",
            )
        if isinstance(packet_pool, bool):
            if packet_pool:
                from .packet import PacketPool

                self.packet_pool: Optional[Any] = PacketPool()
            else:
                self.packet_pool = None
        else:
            self.packet_pool = packet_pool

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def scheduler_name(self) -> str:
        """Name of the scheduler structure currently in use."""
        return getattr(self._sched, "name", "custom")

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        shunt = self._shunt
        if shunt is not None and shunt(time, fn, args):
            # Captured as a cross-shard boundary message: the event fires
            # on the *receiving* shard, not here.  Hand back a fresh,
            # never-queued handle so callers that cancel it get a no-op.
            # Safe because boundary deliveries (Channel._fused_done /
            # _deliver) never store their schedule handles.
            ev = Event(time, fn, args)
            ev._queued = False
            return ev
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, fn, args)
        ev._queued = True
        ev._sim = self
        self._seq += 1
        self._sched.push((time, self._seq, ev))
        self._live += 1
        if self._auto and self._live > AUTO_CALENDAR_THRESHOLD:
            self._migrate_to_calendar()
        return ev

    def schedule_many(
        self, times: Sequence[float], fn: Callable[..., Any], *args: Any
    ) -> List[Event]:
        """Bulk-schedule ``fn(*args)`` at each absolute time in ``times``.

        Equivalent to ``[schedule_at(t, fn, *args) for t in times]`` —
        same sequence numbers, same dispatch order — with the validation
        and attribute traffic amortized over the batch (used by the
        batched CBR fast path).
        """
        now = self.now
        sched = self._sched
        free = self._free
        seq = self._seq
        out: List[Event] = []
        try:
            for time in times:
                if time < now:
                    raise SimulationError(
                        f"cannot schedule at t={time} before current time t={now}"
                    )
                if free:
                    ev = free.pop()
                    ev.time = time
                    ev.fn = fn
                    ev.args = args
                    ev.cancelled = False
                else:
                    ev = Event(time, fn, args)
                ev._queued = True
                ev._sim = self
                seq += 1
                sched.push((time, seq, ev))
                out.append(ev)
        finally:
            self._seq = seq
            self._live += len(out)
        if self._auto and self._live > AUTO_CALENDAR_THRESHOLD:
            self._migrate_to_calendar()
        return out

    def _migrate_to_calendar(self) -> None:
        """One-shot auto migration heap -> calendar queue."""
        self._auto = False
        self._sched = CalendarQueueScheduler(self._sched.drain())

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> "Timer":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        ``start`` is the absolute time of the first firing (defaults to
        ``now + interval``).  ``jitter_fn``, if given, is called before
        each firing and its return value is added to the nominal delay —
        used e.g. to de-synchronize periodic control loops.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        timer = Timer(self, interval, fn, args, jitter_fn)
        first = (self.now + interval) if start is None else start
        timer._arm(first)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        Runs until the scheduler is empty, or until the clock would pass
        ``until`` (the clock is then advanced to exactly ``until``).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        journal = self.journal
        if journal is not None:
            before = self.events_processed
            journal.record("sim_run_start", pending=self._live)
        prof = self.profiler
        if prof is not None and prof.dims is not None:
            self._run_attributed(until)
        elif prof is not None or self.stream is not None:
            self._run_profiled(until)
        else:
            self._run_plain(until)
        if journal is not None:
            journal.record(
                "sim_run_end", events=self.events_processed - before
            )

    def _run_plain(self, until: Optional[float] = None) -> None:
        self._running = True
        self._stopped = False
        free = self._free
        free_max = self._free_max
        # Sentinel instead of a per-event None test; time > inf is never
        # true, so the untimed loop pays one float compare.
        limit = float("inf") if until is None else until
        processed = 0
        try:
            while True:
                sched = self._sched
                entry = sched.pop()
                if entry is None:
                    break
                time = entry[0]
                if time > limit:
                    sched.push(entry)
                    break
                ev = entry[2]
                ev._queued = False
                if ev.cancelled:
                    if len(free) < free_max:
                        ev.fn = _retired
                        ev.args = ()
                        free.append(ev)
                    continue
                self._live -= 1
                self.now = time
                ev.fn(*ev.args)
                processed += 1
                # Retire only after the callback returns: a callback may
                # legitimately cancel the very event that is firing (a
                # timer cancelling itself), which must see _queued=False
                # on this object, not on a recycled successor.
                if len(free) < free_max:
                    ev.fn = _retired
                    ev.args = ()
                    free.append(ev)
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
            self.events_processed += processed

    def _run_profiled(self, until: Optional[float] = None) -> None:
        """The same event loop as :meth:`run`, instrumented for the
        attached profiler (wall-clock timing, live pending high-water
        mark) and/or live streamer (pulsed once per ``check_stride``
        dispatched events — a bitmask test on the hot path).  Kept as a
        separate copy so the uninstrumented loop carries zero cost."""
        # reprolint: ignore[RPL002] -- self-profiling measures real wall
        # time for repro.obs; it never feeds back into simulated state
        from time import perf_counter

        prof = self.profiler
        stream = self.stream
        # Stream pulse cadence: the pulse fires when `processed` is a
        # multiple of the stream's power-of-two check stride.
        smask = stream.check_mask if stream is not None else 0
        sbase = self.events_processed
        self._running = True
        self._stopped = False
        free = self._free
        free_max = self._free_max
        processed = 0
        hwm = self._live
        sim_start = self.now
        limit = float("inf") if until is None else until
        wall_start = perf_counter()  # reprolint: ignore[RPL002] -- profiler
        try:
            while True:
                if self._live > hwm:
                    hwm = self._live
                sched = self._sched
                entry = sched.pop()
                if entry is None:
                    break
                time = entry[0]
                if time > limit:
                    sched.push(entry)
                    break
                ev = entry[2]
                ev._queued = False
                if ev.cancelled:
                    if len(free) < free_max:
                        ev.fn = _retired
                        ev.args = ()
                        free.append(ev)
                    continue
                self._live -= 1
                self.now = time
                ev.fn(*ev.args)
                processed += 1
                if len(free) < free_max:
                    ev.fn = _retired
                    ev.args = ()
                    free.append(ev)
                if stream is not None and (processed & smask) == 0:
                    stream.pulse(self, sbase + processed)
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
            self.events_processed += processed
            if prof is not None:
                prof.note_heap(hwm)
                prof.record_run(
                    processed,
                    perf_counter() - wall_start,  # reprolint: ignore[RPL002]
                    self.now - sim_start,
                )

    def _run_attributed(self, until: Optional[float] = None) -> None:
        """The profiled loop plus per-event dimensional attribution.

        Chosen by :meth:`run` when the attached profiler has dimensions
        enabled (:meth:`repro.obs.profile.EngineProfiler
        .enable_dimensions`): each callback is bracketed with a
        wall-clock timer and charged to its ``(kind, module, site)``
        cell.  A third loop copy so neither the plain loop nor the
        ordinary profiled/streamed loop (whose overhead is gated by
        ``bench_stream_overhead``) pays for the per-event bookkeeping.
        Attribution only reads engine state — it never schedules events
        or touches the journal, so journals are byte-identical with
        attribution on or off (gated by ``bench_profile_overhead``).
        """
        # reprolint: ignore[RPL002] -- self-profiling measures real wall
        # time for repro.obs; it never feeds back into simulated state
        from time import perf_counter

        prof = self.profiler
        assert prof is not None and prof.dims is not None
        dims = prof.dims
        kind_of = prof.dimension_kind
        site_of = prof.dimension_site
        # Per-callback memo for the fully resolved dimension key.  Bound
        # methods are fresh objects per schedule() call, so the memo is
        # keyed by (underlying function, bound instance) — both stable
        # and already alive while their events are pending.
        key_cache: dict = {}
        stream = self.stream
        smask = stream.check_mask if stream is not None else 0
        sbase = self.events_processed
        self._running = True
        self._stopped = False
        free = self._free
        free_max = self._free_max
        processed = 0
        hwm = self._live
        sim_start = self.now
        limit = float("inf") if until is None else until
        wall_start = perf_counter()  # reprolint: ignore[RPL002] -- profiler
        try:
            while True:
                if self._live > hwm:
                    hwm = self._live
                sched = self._sched
                entry = sched.pop()
                if entry is None:
                    break
                time = entry[0]
                if time > limit:
                    sched.push(entry)
                    break
                ev = entry[2]
                ev._queued = False
                if ev.cancelled:
                    if len(free) < free_max:
                        ev.fn = _retired
                        ev.args = ()
                        free.append(ev)
                    continue
                self._live -= 1
                self.now = time
                fn = ev.fn
                t0 = perf_counter()  # reprolint: ignore[RPL002] -- profiler
                fn(*ev.args)
                dt = perf_counter() - t0  # reprolint: ignore[RPL002]
                processed += 1
                ckey = (getattr(fn, "__func__", fn), getattr(fn, "__self__", None))
                try:
                    key = key_cache.get(ckey)
                except TypeError:  # unhashable instance: no memo
                    ckey = key = None
                if key is None:
                    kind, module = kind_of(fn)
                    key = (kind, module, site_of(fn))
                    if ckey is not None:
                        key_cache[ckey] = key
                cell = dims.get(key)
                if cell is None:
                    dims[key] = [1, dt]
                else:
                    cell[0] += 1
                    cell[1] += dt
                if len(free) < free_max:
                    ev.fn = _retired
                    ev.args = ()
                    free.append(ev)
                if stream is not None and (processed & smask) == 0:
                    stream.pulse(self, sbase + processed)
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
            self.events_processed += processed
            prof.note_heap(hwm)
            prof.record_run(
                processed,
                perf_counter() - wall_start,  # reprolint: ignore[RPL002]
                self.now - sim_start,
            )

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    def peek_time(self) -> float:
        """Timestamp of the earliest *live* pending event (+inf if idle).

        Lazily-cancelled entries at the head are discarded on the way —
        the same skip the event loop would perform — so the answer is
        the time of the next event that will actually fire.  This is the
        per-shard clock promise the conservative sharded mode
        (:mod:`repro.sim.shard`) exchanges at barrier points: a shard
        whose ``peek_time()`` is ``t`` cannot cause any effect anywhere
        before ``t``, and cannot deliver across a boundary channel
        before ``t + lookahead``.
        """
        sched = self._sched
        while True:
            entry = sched.peek()
            if entry is None:
                return float("inf")
            ev = entry[2]
            if not ev.cancelled:
                return entry[0]
            sched.pop()  # discard the cancelled head lazily
            ev._queued = False

    def pending(self, live: bool = False) -> int:
        """Number of pending events.

        With ``live=False`` (default) this counts scheduler entries,
        including lazily-cancelled ones still awaiting their skip-pop;
        ``live=True`` counts only events that will actually fire.
        """
        if live:
            return self._live
        return len(self._sched)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6f}, pending={len(self._sched)}, "
            f"live={self._live}, scheduler={self.scheduler_name})"
        )


class Timer:
    """A recurring timer created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "fn", "args", "jitter_fn", "_event", "cancelled")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        args: tuple,
        jitter_fn: Optional[Callable[[], float]],
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self.cancelled = False

    def _arm(self, at: float) -> None:
        sim = self.sim
        # The nominal firing time never lies in the past.
        floor = at if at > sim.now else sim.now
        if self.jitter_fn is not None:
            at = at + self.jitter_fn()
            if at < floor:
                # A too-negative jitter draw is clamped to the *nominal*
                # time, not to `now`: clamping to `now` silently
                # coalesced firings onto the current instant and hid the
                # de-sync misconfiguration.  The clamp is counted so it
                # stays visible.
                at = floor
                sim.timer_jitter_clamps += 1
                metrics = sim.metrics
                if metrics is not None:
                    metrics.counter("timer_jitter_clamped").inc()
        else:
            at = floor
        self._event = sim.schedule_at(at, self._fire)

    def _fire(self) -> None:
        # Drop the fired-event handle immediately: the engine may
        # recycle the object, so a later cancel() must not reach it.
        self._event = None
        if self.cancelled:
            return
        self.fn(*self.args)
        if not self.cancelled:
            self._arm(self.sim.now + self.interval)

    def cancel(self) -> None:
        """Stop the timer; any armed firing is cancelled."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
