"""Per-flow statistics: delivery ratio, latency, jitter.

Complements :mod:`repro.sim.monitor` (aggregate throughput) with
per-flow measurements — the quantities behind the paper's observation
that attacks degrade "the throughput of both TCP flows from servers to
clients as well as data flows from clients into servers" and that
roaming adds jitter at epoch switches.

Sources tag packets with a ``flow`` label and a ``created_at``
timestamp (CBRSource already does); a :class:`FlowStats` taps sinks and
accumulates per-flow counters.  Loss is measured against the sender's
packet counter via :meth:`expected`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from .engine import Simulator
from .node import Host
from .packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports sim)
    from ..obs.registry import MetricsRegistry

__all__ = ["FlowRecord", "FlowStats"]


@dataclass
class FlowRecord:
    """Accumulated statistics of one flow."""

    flow: Any
    delivered: int = 0
    bytes: int = 0
    latency_sum: float = 0.0
    latency_sq_sum: float = 0.0
    latency_min: float = math.inf
    latency_max: float = 0.0
    _last_latency: Optional[float] = field(default=None, repr=False)
    jitter_sum: float = 0.0
    jitter_samples: int = 0
    expected: Optional[int] = None

    # ------------------------------------------------------------------
    def record(self, latency: float, size: int) -> None:
        self.delivered += 1
        self.bytes += size
        self.latency_sum += latency
        self.latency_sq_sum += latency * latency
        self.latency_min = min(self.latency_min, latency)
        self.latency_max = max(self.latency_max, latency)
        if self._last_latency is not None:
            self.jitter_sum += abs(latency - self._last_latency)
            self.jitter_samples += 1
        self._last_latency = latency

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.delivered if self.delivered else math.nan

    @property
    def latency_stddev(self) -> float:
        if self.delivered < 2:
            return 0.0
        mean = self.mean_latency
        var = max(0.0, self.latency_sq_sum / self.delivered - mean * mean)
        return math.sqrt(var)

    @property
    def mean_jitter(self) -> float:
        """Mean absolute latency difference of consecutive deliveries."""
        return (
            self.jitter_sum / self.jitter_samples if self.jitter_samples else 0.0
        )

    @property
    def delivery_ratio(self) -> float:
        """Delivered / expected (nan when the sender count is unknown)."""
        if not self.expected:
            return math.nan
        return self.delivered / self.expected


class FlowStats:
    """Collects per-flow records at a set of sink hosts.

    With a :class:`repro.obs.MetricsRegistry`, per-packet latency is
    additionally sampled into a ``flow_latency_seconds`` histogram.
    """

    def __init__(
        self,
        sim: Simulator,
        sinks: Sequence[Host],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.flows: Dict[Any, FlowRecord] = {}
        self._latency_hist = (
            registry.histogram("flow_latency_seconds")
            if registry is not None
            else None
        )
        for host in sinks:
            host.on_deliver(self._on_packet)

    def _on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CONTROL or pkt.flow is None:
            return
        rec = self.flows.get(pkt.flow)
        if rec is None:
            rec = FlowRecord(pkt.flow)
            self.flows[pkt.flow] = rec
        latency = self.sim.now - pkt.created_at
        rec.record(latency, pkt.size)
        if self._latency_hist is not None:
            self._latency_hist.observe(latency)

    # ------------------------------------------------------------------
    def set_expected(self, flow: Any, sent: int) -> None:
        """Register the sender-side packet count for loss accounting."""
        rec = self.flows.setdefault(flow, FlowRecord(flow))
        rec.expected = sent

    def flow(self, flow: Any) -> Optional[FlowRecord]:
        return self.flows.get(flow)

    def by_class(self, prefix: Any) -> List[FlowRecord]:
        """Flows whose label's first element equals ``prefix``
        (e.g. all ``("client", ...)`` flows)."""
        return [
            rec
            for flow, rec in self.flows.items()
            if isinstance(flow, tuple) and flow and flow[0] == prefix
        ]

    def totals(self) -> Dict[str, float]:
        delivered = sum(r.delivered for r in self.flows.values())
        nbytes = sum(r.bytes for r in self.flows.values())
        lat = [r.mean_latency for r in self.flows.values() if r.delivered]
        return {
            "flows": len(self.flows),
            "delivered": delivered,
            "bytes": nbytes,
            "mean_latency": sum(lat) / len(lat) if lat else math.nan,
        }
