"""Client subscription: time-based roaming keys.

"Upon subscription to the service, each legitimate client is assigned a
roaming key K_t from the hash chain, with a varying value of t
according to each client's trust level and/or other policies.  K_t acts
as a time-based token: it allows the client to track the service up to
and including epoch t."  (Section 4)

The client derives the key of any epoch i <= t by hashing K_t forward
(t - i) times, computes the epoch's active set with it, and contacts an
active server.  When the subscription expires (current epoch > t), the
client renews with the subscription service.  Clients also maintain a
loosely synchronized clock: each service interaction resyncs; a client
idle too long resynchronizes with the subscription service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from ..crypto.hashchain import HashChain
from .schedule import RoamingSchedule

__all__ = ["RoamingKey", "SubscriptionService", "ClientSubscription", "SubscriptionExpired"]


class SubscriptionExpired(Exception):
    """Raised when a client's roaming key cannot cover the current epoch."""


@dataclass(frozen=True)
class RoamingKey:
    """A time-based token: chain key K_t valid through epoch ``t``."""

    epoch_limit: int
    key: bytes


# Trust level -> how many epochs ahead a subscription covers.
DEFAULT_TRUST_HORIZONS: Dict[str, int] = {
    "low": 10,
    "standard": 50,
    "high": 200,
}


class SubscriptionService:
    """Issues roaming keys and the server list to legitimate clients."""

    def __init__(
        self,
        schedule: RoamingSchedule,
        chain: HashChain,
        trust_horizons: Dict[str, int] | None = None,
    ) -> None:
        self.schedule = schedule
        self.chain = chain
        self.trust_horizons = dict(trust_horizons or DEFAULT_TRUST_HORIZONS)
        self.issued: int = 0

    def subscribe(
        self, now: float, trust_level: str = "standard"
    ) -> "ClientSubscription":
        """Issue a subscription anchored at the current epoch."""
        horizon = self.trust_horizons.get(trust_level)
        if horizon is None:
            raise ValueError(f"unknown trust level {trust_level!r}")
        epoch_now = self.schedule.epoch_index(now)
        limit = min(epoch_now + horizon, self.chain.length)
        self.issued += 1
        return ClientSubscription(
            service=self,
            roaming_key=RoamingKey(limit, self.chain.key(limit)),
            n_servers=self.schedule.n_servers,
        )

    def renew(self, sub: "ClientSubscription", now: float, trust_level: str = "standard") -> None:
        """Replace an expired key (client contacted the service again)."""
        fresh = self.subscribe(now, trust_level)
        sub.roaming_key = fresh.roaming_key

    def resync_clock(self) -> float:
        """Authoritative time offset (0: the service's clock is truth)."""
        return 0.0


class ClientSubscription:
    """Client-side state: roaming key, clock offset, server tracking."""

    def __init__(
        self,
        service: SubscriptionService,
        roaming_key: RoamingKey,
        n_servers: int,
        clock_offset: float = 0.0,
    ) -> None:
        self.service = service
        self.roaming_key = roaming_key
        self.n_servers = n_servers
        # Bounded clock shift (|offset| <= delta by assumption).
        self.clock_offset = clock_offset

    def local_time(self, true_time: float) -> float:
        return true_time + self.clock_offset

    def epoch_key(self, epoch: int) -> bytes:
        """Derive K_epoch from the held K_t (epoch must be <= t)."""
        if epoch > self.roaming_key.epoch_limit:
            raise SubscriptionExpired(
                f"epoch {epoch} beyond subscription limit "
                f"{self.roaming_key.epoch_limit}"
            )
        return HashChain.derive_backward(
            self.roaming_key.key, self.roaming_key.epoch_limit, epoch
        )

    def active_servers(self, true_time: float) -> FrozenSet[int]:
        """Active-server indices as computed by this client right now.

        Uses the client's *local* clock; with |offset| <= delta and the
        pool's guard bands, this is always a currently valid set.
        Raises :class:`SubscriptionExpired` when the key has run out.
        """
        schedule = self.service.schedule
        epoch = schedule.epoch_index(max(self.local_time(true_time), schedule.start_time))
        key = self.epoch_key(epoch)
        return schedule.active_set_from_key(key, epoch)

    def pick_server(self, true_time: float, rng) -> int:
        """Uniformly random active server index (paper's client policy)."""
        active: List[int] = sorted(self.active_servers(true_time))
        return active[int(rng.integers(len(active)))]
