"""Server-side request handling with handshake-verified blacklisting.

The roaming honeypots scheme's original defense (Section 4, before
back-propagation is added): a server acting as a honeypot answers
connection requests with a SYN-ACK; only sources that complete the
handshake — proving their address is not spoofed — are blacklisted,
and all their future requests are dropped.  Spoofed sources never
complete the handshake, so spoofing cannot frame third parties.

Used standalone, this stops *non-spoofing* attackers; the paper's
contribution (back-propagation) handles the spoofing ones.  Both can
run side by side on the same server pool.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet, PacketKind
from .blacklist import Blacklist
from .roaming import RoamingServerPool

__all__ = ["BlacklistingServerApp"]


class BlacklistingServerApp:
    """Honeypot-epoch handshake trap + blacklist enforcement."""

    def __init__(
        self,
        sim: Simulator,
        server: Host,
        server_index: int,
        pool: RoamingServerPool,
        blacklist: Optional[Blacklist] = None,
        synack_size: int = 64,
    ) -> None:
        self.sim = sim
        self.server = server
        self.server_index = server_index
        self.pool = pool
        self.blacklist = blacklist if blacklist is not None else Blacklist()
        self.synack_size = synack_size
        self.served = 0
        self.dropped_blacklisted = 0
        self.synacks_sent = 0
        server.on_deliver(self._on_packet)

    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CONTROL:
            return
        now = self.sim.now
        # Blacklist enforcement applies in every role.
        if self.blacklist.is_blacklisted(pkt.src):
            self.dropped_blacklisted += 1
            return
        if not self.pool.is_honeypot_now(self.server_index, now):
            self.served += 1
            return
        # Honeypot role: trap handshakes instead of serving.
        if pkt.kind == PacketKind.SYN:
            if self.blacklist.on_syn(pkt.src, now):
                reply = Packet(
                    self.server.addr,
                    pkt.src,
                    self.synack_size,
                    kind=PacketKind.SYNACK,
                    created_at=now,
                )
                self.server.originate(reply)
                self.synacks_sent += 1
        elif pkt.kind == PacketKind.ACK:
            self.blacklist.on_ack(pkt.src, now)
