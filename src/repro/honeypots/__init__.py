"""Roaming honeypots substrate (Khattab et al. 2004, Section 4)."""

from .blacklist import Blacklist
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    ConnectionState,
)
from .roaming import RoamingServerPool
from .schedule import BernoulliSchedule, EpochClock, RoamingSchedule
from .subscription import (
    ClientSubscription,
    RoamingKey,
    SubscriptionExpired,
    SubscriptionService,
)

__all__ = [
    "BernoulliSchedule",
    "Blacklist",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "ClientSubscription",
    "ConnectionState",
    "EpochClock",
    "RoamingKey",
    "RoamingSchedule",
    "RoamingServerPool",
    "SubscriptionExpired",
    "SubscriptionService",
]
