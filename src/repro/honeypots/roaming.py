"""Roaming server pool: epoch transitions, roles, and guard bands.

The pool drives the epoch clock inside the simulator and answers the
question the back-propagation trigger depends on: *is server s acting
as a honeypot right now?*

Loose clock synchronization (Section 4): clock shift among components
is bounded by δ, and γ is the estimated client→server communication
delay.  "Each service epoch starts earlier by δ at the new servers and
ends later by δ + γ at the active servers of the previous epoch."  A
server's *honeypot-effective* window inside an epoch is therefore
trimmed:

* if the server was active in the previous epoch, its honeypot role
  starts δ + γ after the epoch boundary (late legitimate packets are
  still in flight);
* if the server will be active in the next epoch, its honeypot role
  ends δ before the boundary (it has already started serving early).

Packets a honeypot receives inside the trimmed window are attack
traffic with high confidence; the guard bands remove the legitimate
stragglers.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..sim.engine import Simulator, Timer
from ..sim.node import Host
from .schedule import BernoulliSchedule, RoamingSchedule

__all__ = ["RoamingServerPool"]

# Listener signature: (epoch, active_server_indices) -> None
EpochListener = Callable[[int, frozenset], None]


class RoamingServerPool:
    """Manages roles of a replicated server pool under a roaming schedule."""

    def __init__(
        self,
        sim: Simulator,
        servers: Sequence[Host],
        schedule: RoamingSchedule | BernoulliSchedule,
        delta: float = 0.05,
        gamma: float = 0.05,
    ) -> None:
        if isinstance(schedule, RoamingSchedule) and len(servers) != schedule.n_servers:
            raise ValueError(
                f"pool has {len(servers)} servers but schedule expects "
                f"{schedule.n_servers}"
            )
        if delta < 0 or gamma < 0:
            raise ValueError("guard bands must be non-negative")
        self.sim = sim
        self.servers = list(servers)
        self.schedule = schedule
        self.delta = delta
        self.gamma = gamma
        self.epoch_listeners: List[EpochListener] = []
        self._timer: Optional[Timer] = None
        # Set by the defense (HoneypotBackpropDefense.attach) before
        # start(): each epoch announcement is journaled as epoch_roll.
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Role queries
    # ------------------------------------------------------------------
    def server_index(self, host: Host) -> int:
        return self.servers.index(host)

    def current_epoch(self) -> int:
        return self.schedule.epoch_index(self.sim.now)

    def active_servers(self, epoch: Optional[int] = None) -> List[Host]:
        epoch = self.current_epoch() if epoch is None else epoch
        active = self.schedule.active_set(epoch)
        return [self.servers[i] for i in sorted(active)]

    def is_honeypot_now(self, server_idx: int, now: Optional[float] = None) -> bool:
        """True if the server is in its honeypot-effective window."""
        now = self.sim.now if now is None else now
        epoch = self.schedule.epoch_index(now)
        if not self.schedule.is_honeypot(server_idx, epoch):
            return False
        start, end = self.honeypot_window(server_idx, epoch)
        return start <= now < end

    def honeypot_window(self, server_idx: int, epoch: int) -> tuple[float, float]:
        """Honeypot-effective [start, end) of ``server_idx`` in ``epoch``.

        Returns an empty window (start >= end) if the server is active
        in the epoch or the guard bands consume the whole epoch.
        """
        start, end = self.schedule.epoch_bounds(epoch)
        if not self.schedule.is_honeypot(server_idx, epoch):
            return (end, end)
        if epoch > 1 and self.schedule.is_active(server_idx, epoch - 1):
            start += self.delta + self.gamma
        if self.schedule.is_active(server_idx, epoch + 1):
            end -= self.delta
        return (start, end) if end >= start else (start, start)

    # ------------------------------------------------------------------
    # Epoch transitions
    # ------------------------------------------------------------------
    def on_epoch(self, listener: EpochListener) -> None:
        """Register a callback fired at each epoch boundary."""
        self.epoch_listeners.append(listener)

    def start(self) -> None:
        """Begin firing epoch transitions in the simulator."""
        if self._timer is not None:
            return
        # Fire the first epoch immediately, then at each boundary.
        self._announce()
        self._timer = self.sim.every(self.schedule.epoch_len, self._announce)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _announce(self) -> None:
        epoch = self.current_epoch()
        active = frozenset(self.schedule.active_set(epoch))
        if self.telemetry is not None:
            self.telemetry.journal.record(
                "epoch_roll", epoch=epoch, active=sorted(active)
            )
        for listener in self.epoch_listeners:
            listener(epoch, active)
