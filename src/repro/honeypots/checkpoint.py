"""Connection checkpointing and migration across server switches.

"When server switching occurs in the middle of a connection, the
connection is migrated to another active server where it is resumed
... each active server periodically checkpoints per-connection state of
current connections and sends the checkpoints to the corresponding
clients.  Clients send the checkpoints to the new servers to resume
their connections."  (Section 4)

Checkpoints are opaque, integrity-protected tokens: the server pool
shares a MAC key, so a checkpoint minted by one replica is accepted by
any other, while a client (or attacker) cannot forge or tamper with
one.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["ConnectionState", "Checkpoint", "CheckpointManager", "CheckpointError"]


class CheckpointError(Exception):
    """Raised for tampered or malformed checkpoints."""


@dataclass
class ConnectionState:
    """Per-connection state a server tracks for an open connection."""

    conn_id: int
    client_addr: int
    bytes_acked: int = 0
    app_state: Dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> Tuple:
        return (
            self.conn_id,
            self.client_addr,
            self.bytes_acked,
            tuple(sorted(self.app_state.items())),
        )


@dataclass(frozen=True)
class Checkpoint:
    """An integrity-protected connection snapshot handed to the client."""

    snapshot: Tuple
    minted_at: float
    tag: bytes


class CheckpointManager:
    """Mints and validates connection checkpoints for a server pool."""

    def __init__(self, pool_key: Optional[bytes] = None) -> None:
        self._key = pool_key if pool_key is not None else secrets.token_bytes(32)
        self.minted = 0
        self.resumed = 0
        self.rejected = 0

    def _mac(self, snapshot: Tuple, minted_at: float) -> bytes:
        payload = repr((snapshot, minted_at)).encode()
        return hmac.new(self._key, payload, hashlib.sha256).digest()

    def checkpoint(self, conn: ConnectionState, now: float) -> Checkpoint:
        """Snapshot a connection (server -> client direction)."""
        snap = conn.snapshot()
        self.minted += 1
        return Checkpoint(snapshot=snap, minted_at=now, tag=self._mac(snap, now))

    def resume(self, ckpt: Checkpoint) -> ConnectionState:
        """Validate a checkpoint and reconstruct the connection state.

        Called by the *new* active server when a client re-attaches
        after a roaming switch.  Raises :class:`CheckpointError` on a
        bad MAC (tampering or a forged checkpoint).
        """
        expected = self._mac(ckpt.snapshot, ckpt.minted_at)
        if not hmac.compare_digest(expected, ckpt.tag):
            self.rejected += 1
            raise CheckpointError("checkpoint failed integrity verification")
        conn_id, client_addr, bytes_acked, app_items = ckpt.snapshot
        self.resumed += 1
        return ConnectionState(
            conn_id=conn_id,
            client_addr=client_addr,
            bytes_acked=bytes_acked,
            app_state=dict(app_items),
        )
