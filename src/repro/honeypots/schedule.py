"""Pseudo-random roaming schedules.

The roaming honeypots scheme divides time into epochs of length ``m``.
In each epoch ``k`` of the ``N`` servers are *active* and the remaining
``N - k`` act as honeypots; the choice is derived from the epoch's hash
chain key, which servers and subscribed clients share.  The probability
that a given server is a honeypot in an epoch is p = (N - k) / N.

Two schedule flavors are provided:

* :class:`RoamingSchedule` — the real scheme: the active set of each
  epoch is a deterministic function of the chain key K_i.
* :class:`BernoulliSchedule` — the abstraction used by the paper's
  analysis and validation experiments (Sections 7, 8.2): a single
  server that is a honeypot in each epoch independently with
  probability ``p``.
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet

import numpy as np

from ..crypto.hashchain import HashChain

__all__ = ["EpochClock", "RoamingSchedule", "BernoulliSchedule"]


class EpochClock:
    """Maps simulation time to 1-based epoch indices of length ``m``."""

    def __init__(self, epoch_len: float, start_time: float = 0.0) -> None:
        if epoch_len <= 0:
            raise ValueError(f"epoch length must be positive (got {epoch_len})")
        self.epoch_len = epoch_len
        self.start_time = start_time

    def epoch_index(self, t: float) -> int:
        """Epoch containing time ``t`` (1-based; epoch 1 starts at start_time)."""
        if t < self.start_time:
            raise ValueError(f"t={t} predates the schedule start {self.start_time}")
        return 1 + int((t - self.start_time) / self.epoch_len)

    def epoch_bounds(self, epoch: int) -> tuple[float, float]:
        """[start, end) of a 1-based epoch index."""
        if epoch < 1:
            raise ValueError(f"epoch indices are 1-based (got {epoch})")
        start = self.start_time + (epoch - 1) * self.epoch_len
        return start, start + self.epoch_len


class RoamingSchedule(EpochClock):
    """Active-server schedule derived from a hash chain.

    The active set of epoch ``i`` is a pseudo-random k-subset of the N
    servers seeded by K_i, so anyone holding K_i (all servers; clients
    holding K_t with t >= i) computes the same set, while an attacker
    without the key cannot predict it.
    """

    def __init__(
        self,
        n_servers: int,
        n_active: int,
        epoch_len: float,
        chain: HashChain,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(epoch_len, start_time)
        if not 1 <= n_active <= n_servers:
            raise ValueError(
                f"need 1 <= k <= N (got k={n_active}, N={n_servers})"
            )
        self.n_servers = n_servers
        self.n_active = n_active
        self.chain = chain
        self._cache: dict[int, FrozenSet[int]] = {}

    @property
    def honeypot_probability(self) -> float:
        """p = (N - k) / N."""
        return (self.n_servers - self.n_active) / self.n_servers

    def active_set(self, epoch: int) -> FrozenSet[int]:
        """Indices (0..N-1) of the servers active during ``epoch``."""
        cached = self._cache.get(epoch)
        if cached is not None:
            return cached
        key = self.chain.key(epoch)
        return self.active_set_from_key(key, epoch)

    def active_set_from_key(self, key: bytes, epoch: int) -> FrozenSet[int]:
        """Active set computed from a disclosed chain key (client side)."""
        seed = int.from_bytes(hashlib.sha256(key + b"active").digest()[:8], "big")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.n_servers, size=self.n_active, replace=False)
        result = frozenset(int(c) for c in chosen)
        self._cache[epoch] = result
        return result

    def is_active(self, server: int, epoch: int) -> bool:
        return server in self.active_set(epoch)

    def is_honeypot(self, server: int, epoch: int) -> bool:
        if not 0 <= server < self.n_servers:
            raise ValueError(f"server index {server} out of range")
        return server not in self.active_set(epoch)


class BernoulliSchedule(EpochClock):
    """One server, honeypot with i.i.d. probability ``p`` per epoch.

    This is the analytical model's Bernoulli-trial abstraction; it also
    drives the string-topology validation runs.  The per-epoch coin is
    a hash of (seed, epoch), so the schedule is deterministic given the
    seed and O(1) per query.
    """

    def __init__(
        self, p: float, epoch_len: float, seed: int = 0, start_time: float = 0.0
    ) -> None:
        super().__init__(epoch_len, start_time)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1] (got {p})")
        self.p = p
        self.seed = seed

    @property
    def honeypot_probability(self) -> float:
        return self.p

    def is_honeypot(self, server: int, epoch: int) -> bool:
        if epoch < 1:
            raise ValueError(f"epoch indices are 1-based (got {epoch})")
        digest = hashlib.sha256(f"{self.seed}:{epoch}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        return u < self.p

    def is_active(self, server: int, epoch: int) -> bool:
        return not self.is_honeypot(server, epoch)

    def active_set(self, epoch: int) -> FrozenSet[int]:
        return frozenset() if self.is_honeypot(0, epoch) else frozenset({0})
