"""Handshake-verified source blacklisting.

"The source address of any request that hits a honeypot is blacklisted,
so that all future requests from this source are subsequently dropped.
The source address is not blacklisted unless a full handshake is
recorded to ensure that it is not spoofed."  (Section 4)

A honeypot that receives a SYN answers with a SYN-ACK; only if the
claimed source then completes the handshake (proving it can receive at
that address, i.e. the address is not spoofed) is it blacklisted.
Spoofed sources never complete the handshake, so spoofing cannot be
used to blacklist innocent third parties.
"""

from __future__ import annotations

from typing import Dict, Set

__all__ = ["Blacklist"]


class Blacklist:
    """Blacklist with three-way-handshake confirmation."""

    def __init__(self, handshake_timeout: float = 3.0) -> None:
        if handshake_timeout <= 0:
            raise ValueError("handshake timeout must be positive")
        self.handshake_timeout = handshake_timeout
        self._blacklisted: Set[int] = set()
        # src -> deadline by which the ACK must arrive.
        self._pending: Dict[int, float] = {}
        self.confirmed = 0
        self.expired = 0

    # ------------------------------------------------------------------
    def on_syn(self, src: int, now: float) -> bool:
        """Record a SYN received by a honeypot.

        Returns True if a SYN-ACK should be sent (i.e. the source is
        not already blacklisted and no handshake is pending).
        """
        if src in self._blacklisted:
            return False
        deadline = now + self.handshake_timeout
        existing = self._pending.get(src)
        if existing is not None and existing > now:
            return False
        self._pending[src] = deadline
        return True

    def on_ack(self, src: int, now: float) -> bool:
        """Record a handshake-completing ACK; blacklist if in time.

        Returns True if the source was blacklisted by this call.
        """
        deadline = self._pending.pop(src, None)
        if deadline is None:
            return False
        if now > deadline:
            self.expired += 1
            return False
        self._blacklisted.add(src)
        self.confirmed += 1
        return True

    def expire(self, now: float) -> None:
        """Drop handshakes that timed out (spoofed sources stay clean)."""
        stale = [src for src, dl in self._pending.items() if now > dl]
        for src in stale:
            del self._pending[src]
            self.expired += 1

    # ------------------------------------------------------------------
    def is_blacklisted(self, src: int) -> bool:
        return src in self._blacklisted

    def __contains__(self, src: int) -> bool:
        return src in self._blacklisted

    def __len__(self) -> int:
        return len(self._blacklisted)

    def pending_count(self) -> int:
        return len(self._pending)
