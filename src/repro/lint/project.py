"""Whole-program project model: parse once, analyze across modules.

reprolint v1 rules see one file at a time, which is exactly the wrong
granularity for the invariants sharded simulation needs: whether an
event handler reaches module state *in another file*, whether two
modules accidentally claim the same RNG stream name, whether a journal
kind emitted in ``repro/backprop`` is documented in the schema table in
``repro/obs/journal.py``.  This module builds the shared substrate for
those cross-module passes:

* :func:`extract_facts` — one AST walk per module producing a
  :class:`ModuleFacts` record: imports (resolved to project modules),
  module-level mutable bindings, class/method structure, per-function
  call and mutation facts, RNG-stream / journal-kind / metric-name
  literals, and the inline-suppression map.  Facts are plain picklable
  dataclasses, so parallel parsing (``repro lint --jobs``) ships facts
  across process boundaries instead of ASTs.
* :class:`Project` — the loaded whole program: facts per module plus
  the import-resolution symbol table the passes query.
* :class:`ProjectRule` — the base class for cross-module rules
  (:mod:`repro.lint.passes`), mirroring :class:`repro.lint.rules.Rule`
  but checked against the whole project instead of one tree.

The analysis is deliberately conservative and purely syntactic (stdlib
``ast`` only): name resolution follows explicit imports, method calls
resolve by name when the receiver is unknown, and anything dynamic
(``getattr``, ``importlib``) is invisible.  Rules built on top aim for
zero false positives on idiomatic code, the same contract as v1.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = [
    "ClassFacts",
    "FunctionFacts",
    "JournalUse",
    "MetricUse",
    "ModuleFacts",
    "Project",
    "ProjectRule",
    "StreamUse",
    "extract_facts",
]

# Methods that mutate their receiver in place (shard-safety passes).
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)

# Expressions recognisably creating a mutable container.
_MUTABLE_FACTORY_NAMES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)

# Annotation heads naming mutable container types (RPL103).
MUTABLE_ANNOTATIONS: FrozenSet[str] = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "List",
        "Dict",
        "Set",
        "DefaultDict",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
    }
)

# Callables whose callable arguments become simulation event handlers:
# the Scheduler/Timer surface of repro.sim.engine plus the component
# registration hooks (delivery handlers, epoch listeners).
HANDLER_REGISTRATION_APIS: FrozenSet[str] = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_many",
        "every",
        "on_deliver",
        "on_epoch",
    }
)

#: Name of the journal schema table (RPL3xx) — a module-level
#: ``Dict[str, str]`` literal mapping journal kind -> meaning.
JOURNAL_KINDS_TABLE = "JOURNAL_KINDS"

_METRIC_APIS = frozenset({"counter", "gauge", "histogram"})
_MODULE_QUALNAME = "<module>"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _chain_root(node: ast.AST) -> Optional[str]:
    """Base Name of an Attribute/Subscript chain (``a`` in ``a.b[c].d``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_mutable_container_expr(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORY_NAMES
    )


def _annotation_heads(node: Optional[ast.AST]) -> FrozenSet[str]:
    """Type-name heads an annotation may denote (Optional/Union unwrapped)."""
    heads: set = set()
    stack: List[ast.AST] = [] if node is None else [node]
    while stack:
        n = stack.pop()
        if isinstance(n, ast.Subscript):
            head = _annotation_heads(n.value)
            if head & {"Optional", "Union"}:
                sl = n.slice
                stack.extend(sl.elts if isinstance(sl, ast.Tuple) else [sl])
            else:
                heads |= head
        elif isinstance(n, ast.BinOp) and isinstance(n.op, ast.BitOr):
            stack.extend([n.left, n.right])
        elif isinstance(n, ast.Name):
            heads.add(n.id)
        elif isinstance(n, ast.Attribute):
            heads.add(n.attr)
        elif isinstance(n, ast.Constant) and isinstance(n.value, str):
            try:
                stack.append(ast.parse(n.value, mode="eval").body)
            except SyntaxError:
                pass
    return frozenset(heads)


# ----------------------------------------------------------------------
# Per-module facts (picklable — they cross process boundaries)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamUse:
    """One RNG stream-name site: ``.stream(x)`` / ``derive_seed(_, x)``.

    ``prefix`` is the static literal head of an f-string name
    (``f"client.{leaf}"`` -> ``"client."``) — the *stream family*
    idiom per-host RNG disciplines use.  It stays None for literal
    names and for f-strings with no literal head.
    """

    api: str  # "stream" | "spawn" | "derive_seed"
    name: Optional[str]  # literal value, None when dynamic
    line: int
    col: int
    prefix: Optional[str] = None


@dataclass(frozen=True)
class JournalUse:
    """One ``journal.record(kind, ...)`` site."""

    kind: Optional[str]  # literal value, None when dynamic
    line: int
    col: int


@dataclass(frozen=True)
class MetricUse:
    """One ``registry.counter/gauge/histogram("name", ...)`` site."""

    instrument: str
    name: str
    line: int
    col: int


@dataclass
class ClassFacts:
    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    # (attr, line, col) of class-level mutable container bindings
    mutable_class_attrs: List[Tuple[str, int, int]] = field(default_factory=list)


@dataclass
class FunctionFacts:
    """Call/mutation facts of one function, method, or the module body."""

    qualname: str
    cls: Optional[str]
    line: int
    # (dotted callee, line, col, n_args) — n_args counts args + keywords
    calls: List[Tuple[str, int, int, int]] = field(default_factory=list)
    # ("self"|"name", ref) callables handed to a handler-registration API
    registered_callbacks: List[Tuple[str, str]] = field(default_factory=list)
    # names bound locally (params, assignments, loop targets): shadowing
    local_names: List[str] = field(default_factory=list)
    # (name, line, col) — rebinding of a declared-global name
    global_writes: List[Tuple[str, int, int]] = field(default_factory=list)
    # (root name, chain, line, col) — in-place mutation whose target
    # chain is rooted at a bare name
    name_mutations: List[Tuple[str, str, int, int]] = field(default_factory=list)
    # (class ref, attr, line, col) — assignment to a class attribute
    classattr_writes: List[Tuple[str, str, int, int]] = field(default_factory=list)
    # (self attr, param, annotation head, line, col) — __init__ storing
    # a mutable-container parameter without a defensive copy
    init_captures: List[Tuple[str, str, str, int, int]] = field(default_factory=list)


@dataclass
class ModuleFacts:
    module_path: str
    display_path: str
    # local name -> (resolved project module path or None, original name)
    imports: Dict[str, Tuple[Optional[str], str]] = field(default_factory=dict)
    module_bindings: List[str] = field(default_factory=list)
    # module-level name -> line of its mutable-container binding
    module_mutables: Dict[str, int] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    streams: List[StreamUse] = field(default_factory=list)
    journal_uses: List[JournalUse] = field(default_factory=list)
    metric_uses: List[MetricUse] = field(default_factory=list)
    # JOURNAL_KINDS table: kind -> line of its key (None: no table here)
    journal_kinds_table: Optional[Dict[str, int]] = None
    journal_kinds_line: int = 0
    # physical line -> suppressed codes (empty frozenset = all codes)
    suppressed: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    parse_error: Optional[Tuple[int, int, str]] = None


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _resolve_import(
    module_path: str, node: ast.ImportFrom, known: FrozenSet[str]
) -> Iterator[Tuple[str, Tuple[Optional[str], str]]]:
    """Map imported local names to project module paths when resolvable."""
    pkg_parts = list(PurePosixPath(module_path).parent.parts)
    if node.level > 0:
        # level=1 is the current package, each extra level one parent up.
        base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
        if node.level - 1 > len(pkg_parts):
            base = []
    else:
        base = []
    mod_parts = base + (node.module.split(".") if node.module else [])

    def as_module(parts: List[str]) -> Optional[str]:
        if not parts:
            return None
        for cand in (
            "/".join(parts) + ".py",
            "/".join(parts) + "/__init__.py",
        ):
            if cand in known:
                return cand
        return None

    source = as_module(mod_parts)
    for alias in node.names:
        local = alias.asname or alias.name
        # `from .passes import shard_safety` — the name itself may be a
        # submodule rather than a symbol of the package.
        submodule = as_module(mod_parts + [alias.name])
        yield local, (submodule or source, alias.name)


class _FactsVisitor(ast.NodeVisitor):
    """Single-pass extractor feeding :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts, known_modules: FrozenSet[str]) -> None:
        self.facts = facts
        self.known = known_modules
        self._cls_stack: List[str] = []
        self._fn_stack: List[FunctionFacts] = []
        mod_fn = FunctionFacts(qualname=_MODULE_QUALNAME, cls=None, line=1)
        facts.functions[_MODULE_QUALNAME] = mod_fn
        self._module_fn = mod_fn
        self._global_decls: Dict[int, set] = {id(mod_fn): set()}

    # -- scope helpers -------------------------------------------------
    @property
    def _fn(self) -> FunctionFacts:
        return self._fn_stack[-1] if self._fn_stack else self._module_fn

    def _qualname(self, name: str) -> str:
        parts = []
        if self._cls_stack:
            parts.append(".".join(self._cls_stack))
        if self._fn_stack:
            parts.append(self._fn_stack[-1].qualname.split(".")[-1])
        parts.append(name)
        return ".".join(parts)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            cand = alias.name.replace(".", "/")
            resolved = None
            for c in (cand + ".py", cand + "/__init__.py"):
                if c in self.known:
                    resolved = c
                    break
            self.facts.imports[local] = (resolved, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for local, target in _resolve_import(
            self.facts.module_path, node, self.known
        ):
            self.facts.imports[local] = target
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._fn_stack:
            cls = ClassFacts(
                name=node.name,
                line=node.lineno,
                bases=[d for d in map(dotted_name, node.bases) if d is not None],
            )
            for stmt in node.body:
                value = None
                target: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    value, target = stmt.value, stmt.targets[0]
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value, target = stmt.value, stmt.target
                if (
                    value is not None
                    and isinstance(target, ast.Name)
                    and _is_mutable_container_expr(value)
                ):
                    cls.mutable_class_attrs.append(
                        (target.id, stmt.lineno, stmt.col_offset + 1)
                    )
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods.append(stmt.name)
            self.facts.classes[node.name] = cls
            if not self._cls_stack:
                self.facts.module_bindings.append(node.name)
        self._cls_stack.append(node.name)
        self.generic_visit(node)
        self._cls_stack.pop()

    def _visit_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qual = self._qualname(node.name)
        fn = FunctionFacts(
            qualname=qual,
            cls=".".join(self._cls_stack) if self._cls_stack else None,
            line=node.lineno,
        )
        args = node.args
        params = [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        fn.local_names.extend(params)
        self.facts.functions[qual] = fn
        if not self._fn_stack and not self._cls_stack:
            self.facts.module_bindings.append(node.name)
        self._fn_stack.append(fn)
        self._global_decls[id(fn)] = set()
        if node.name == "__init__" and len(self._cls_stack) == 1:
            self._collect_init_captures(node, fn)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _collect_init_captures(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        fn: FunctionFacts,
    ) -> None:
        anns: Dict[str, FrozenSet[str]] = {}
        for a in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            heads = _annotation_heads(a.annotation)
            if heads & MUTABLE_ANNOTATIONS:
                anns[a.arg] = heads
        if not anns:
            return
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in anns
            ):
                continue
            head = sorted(anns[stmt.value.id] & MUTABLE_ANNOTATIONS)[0]
            fn.init_captures.append(
                (target.attr, stmt.value.id, head, stmt.lineno, stmt.col_offset + 1)
            )

    # -- statements ----------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self._global_decls.setdefault(id(self._fn), set()).update(node.names)

    def _record_binding(self, name: str) -> None:
        fn = self._fn
        if fn is self._module_fn and not self._cls_stack:
            self.facts.module_bindings.append(name)
        else:
            fn.local_names.append(name)

    def _handle_target(self, target: ast.expr, node: ast.stmt) -> None:
        fn = self._fn
        if isinstance(target, ast.Name):
            if target.id in self._global_decls.get(id(fn), ()):
                fn.global_writes.append(
                    (target.id, node.lineno, node.col_offset + 1)
                )
            else:
                self._record_binding(target.id)
        elif isinstance(target, ast.Subscript):
            root = _chain_root(target)
            chain = dotted_name(target.value)
            if root is not None:
                fn.name_mutations.append(
                    (root, (chain or root) + "[...]", node.lineno, node.col_offset + 1)
                )
        elif isinstance(target, ast.Attribute):
            ref = self._class_ref(target.value)
            if ref is not None:
                fn.classattr_writes.append(
                    (ref, target.attr, node.lineno, node.col_offset + 1)
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(elt, node)
        elif isinstance(target, ast.Starred):
            self._handle_target(target.value, node)

    def _class_ref(self, node: ast.expr) -> Optional[str]:
        """A reference naming a *class* rather than an instance."""
        if isinstance(node, ast.Name):
            if node.id == "cls":
                return "cls"
            if node.id in self.facts.classes or node.id in self.facts.imports:
                # Resolution to an actual class happens in the pass; the
                # extractor only records candidate symbol references.
                if node.id[:1].isupper():
                    return node.id
            return None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "type"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            return "type(self)"
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "__class__"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return "self.__class__"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_target(target, node)
        # Module-level mutable-container bindings + the schema table.
        if (
            self._fn is self._module_fn
            and not self._cls_stack
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            self._module_binding_value(node.targets[0].id, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_target(node.target, node)
            if (
                self._fn is self._module_fn
                and not self._cls_stack
                and isinstance(node.target, ast.Name)
            ):
                self._module_binding_value(node.target.id, node.value, node)
        self.generic_visit(node)

    def _module_binding_value(
        self, name: str, value: ast.expr, node: ast.stmt
    ) -> None:
        if _is_mutable_container_expr(value):
            self.facts.module_mutables.setdefault(name, node.lineno)
        if name == JOURNAL_KINDS_TABLE and isinstance(value, ast.Dict):
            table: Dict[str, int] = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    table[key.value] = key.lineno
            self.facts.journal_kinds_table = table
            self.facts.journal_kinds_line = node.lineno

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        fn = self._fn
        if isinstance(node.target, ast.Name):
            if node.target.id in self._global_decls.get(id(fn), ()):
                fn.global_writes.append(
                    (node.target.id, node.lineno, node.col_offset + 1)
                )
            elif fn is not self._module_fn:
                # `x += ...` on a non-local name both reads and writes; a
                # plain rebinding makes it local, so nothing to record.
                fn.local_names.append(node.target.id)
        elif isinstance(node.target, (ast.Subscript, ast.Attribute)):
            root = _chain_root(node.target)
            chain = dotted_name(node.target) or dotted_name(node.target.value)
            if root is not None and root not in ("self", "cls"):
                fn.name_mutations.append(
                    (root, chain or root, node.lineno, node.col_offset + 1)
                )
        self.generic_visit(node)

    def _handle_loop_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._record_binding(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_loop_target(elt)

    def visit_For(self, node: ast.For) -> None:
        self._handle_loop_target(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._handle_loop_target(node.target)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._handle_loop_target(node.optional_vars)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn
        dotted = dotted_name(node.func)
        n_args = len(node.args) + len(node.keywords)
        if dotted is not None:
            fn.calls.append(
                (dotted, node.lineno, node.col_offset + 1, n_args)
            )
            parts = dotted.split(".")
            tail = parts[-1]
            first = node.args[0] if node.args else None
            # RNG stream sites.  ``.spawn`` only counts with a literal
            # string argument: the name is overloaded (attacker policies
            # also expose ``spawn(env)``) and only registry spawns take
            # stream-name strings.
            if tail == "stream" and len(node.args) >= 1:
                self._stream_use(tail, first, node)
            elif tail == "derive_seed" and len(node.args) >= 2:
                self._stream_use(tail, node.args[1], node)
            elif (
                tail == "spawn"
                and len(node.args) >= 1
                and isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                self._stream_use(tail, first, node)
            # Journal record sites
            if tail == "record" and len(parts) >= 2 and parts[-2] == "journal":
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    self.facts.journal_uses.append(
                        JournalUse(first.value, node.lineno, node.col_offset + 1)
                    )
                else:
                    self.facts.journal_uses.append(
                        JournalUse(None, node.lineno, node.col_offset + 1)
                    )
            # Metric instrument sites
            if (
                tail in _METRIC_APIS
                and len(parts) >= 2
                and isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                self.facts.metric_uses.append(
                    MetricUse(tail, first.value, node.lineno, node.col_offset + 1)
                )
            # In-place mutation through a method call
            if tail in MUTATOR_METHODS and isinstance(node.func, ast.Attribute):
                root = _chain_root(node.func.value)
                if root is not None and root not in ("self", "cls"):
                    chain = dotted_name(node.func.value)
                    fn.name_mutations.append(
                        (
                            root,
                            f"{chain or root}.{tail}()",
                            node.lineno,
                            node.col_offset + 1,
                        )
                    )
            # Handler registration: callable arguments become entries.
            if tail in HANDLER_REGISTRATION_APIS:
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    self._collect_callback_refs(arg, fn)
        self.generic_visit(node)

    def _stream_use(self, api: str, arg: Optional[ast.expr], node: ast.Call) -> None:
        name: Optional[str] = None
        prefix: Optional[str] = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            # f-string: capture the static literal head, the auditable
            # part of a per-host "stream family" name.
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                prefix = head.value
        self.facts.streams.append(
            StreamUse(api, name, node.lineno, node.col_offset + 1, prefix=prefix)
        )

    def _collect_callback_refs(self, arg: ast.expr, fn: FunctionFacts) -> None:
        """Callable references inside a registration argument.

        Walks the whole argument expression so ``self._poll``, a bare
        function name, and callables referenced inside an inline lambda
        are all captured (a conservative over-approximation).
        """
        for sub in ast.walk(arg):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                fn.registered_callbacks.append(("self", sub.attr))
            elif isinstance(sub, ast.Name) and not isinstance(
                getattr(sub, "ctx", None), ast.Store
            ):
                fn.registered_callbacks.append(("name", sub.id))


def scan_suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Inline-suppression map: 1-based line -> suppressed codes.

    Mirrors the runner's ``_is_suppressed`` semantics exactly: a
    suppression covers its own line, and a contiguous block of
    comment-only lines directly above covers the next code line.
    Empty frozenset means "all codes".
    """
    from .runner import _suppressed_codes

    out: Dict[int, FrozenSet[str]] = {}
    for i in range(1, len(lines) + 1):
        candidates = [lines[i - 1]]
        prev = i - 2
        while prev >= 0 and lines[prev].lstrip().startswith("#"):
            candidates.append(lines[prev])
            prev -= 1
        merged: Optional[FrozenSet[str]] = None
        for line in candidates:
            codes = _suppressed_codes(line)
            if codes is None:
                continue
            if not codes:
                merged = frozenset()
                break
            merged = codes if merged is None else merged | codes
        if merged is not None:
            out[i] = merged
    return out


def extract_facts(
    source: str,
    module_path: str,
    known_modules: FrozenSet[str],
    display_path: Optional[str] = None,
) -> ModuleFacts:
    """Parse one module and extract its cross-module facts."""
    facts = ModuleFacts(
        module_path=module_path, display_path=display_path or module_path
    )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        facts.parse_error = (exc.lineno or 1, (exc.offset or 0) or 1, exc.msg or "")
        return facts
    facts.suppressed = scan_suppressions(source.splitlines())
    _FactsVisitor(facts, known_modules).visit(tree)
    return facts


# ----------------------------------------------------------------------
# The loaded project
# ----------------------------------------------------------------------
class Project:
    """All modules of one source tree, parsed once, plus the symbol table."""

    def __init__(self, root: str, facts: Dict[str, ModuleFacts]) -> None:
        self.root = root
        self.modules: Dict[str, ModuleFacts] = dict(sorted(facts.items()))

    # -- construction --------------------------------------------------
    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], root: str = "<memory>"
    ) -> "Project":
        """Build a project from in-memory ``{module_path: source}`` —
        the fixture/test entry point."""
        known = frozenset(sources)
        facts = {
            path: extract_facts(src, path, known)
            for path, src in sources.items()
        }
        return cls(root, facts)

    @classmethod
    def load(cls, root: str, jobs: Optional[int] = None) -> "Project":
        """Parse every ``*.py`` under ``root`` (``--jobs`` parallelizes)."""
        root_path = Path(root)
        files = sorted(
            f
            for f in root_path.rglob("*.py")
            if "__pycache__" not in f.parts
        )
        rels = [f.relative_to(root_path).as_posix() for f in files]
        known = frozenset(rels)
        display = [str(f) for f in files]
        facts: Dict[str, ModuleFacts] = {}
        if jobs is not None and jobs > 1 and len(files) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for mf in pool.map(
                    _extract_one,
                    [str(f) for f in files],
                    rels,
                    [known] * len(files),
                    display,
                    chunksize=8,
                ):
                    facts[mf.module_path] = mf
        else:
            for f, rel, disp in zip(files, rels, display):
                facts[rel] = extract_facts(
                    f.read_text(encoding="utf-8"), rel, known, disp
                )
        return cls(str(root), facts)

    # -- symbol table --------------------------------------------------
    def resolve(
        self, module_path: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``name`` in ``module_path`` to ``(module, symbol)``.

        Follows one explicit import hop; local bindings win.  Returns
        None for builtins and third-party symbols.
        """
        mod = self.modules.get(module_path)
        if mod is None:
            return None
        if (
            name in mod.classes
            or name in mod.functions
            or name in mod.module_mutables
            or name in mod.module_bindings
        ):
            return (module_path, name)
        target = mod.imports.get(name)
        if target is None:
            return None
        source, original = target
        if source is None:
            return None
        if original == name or "." not in name:
            return (source, original)
        return None

    def find_class(
        self, module_path: str, name: str
    ) -> Optional[Tuple[str, ClassFacts]]:
        resolved = self.resolve(module_path, name)
        if resolved is None:
            return None
        mod_path, symbol = resolved
        mod = self.modules.get(mod_path)
        if mod is not None and symbol in mod.classes:
            return (mod_path, mod.classes[symbol])
        return None

    def is_suppressed(self, diag: Diagnostic, module_path: str) -> bool:
        mod = self.modules.get(module_path)
        if mod is None:
            return False
        codes = mod.suppressed.get(diag.line)
        return codes is not None and (not codes or diag.code in codes)


def _extract_one(
    path: str, rel: str, known: FrozenSet[str], display: str
) -> ModuleFacts:
    """Worker for parallel project loading (module-level: picklable)."""
    return extract_facts(
        Path(path).read_text(encoding="utf-8"), rel, known, display
    )


# ----------------------------------------------------------------------
# Base class of the cross-module passes
# ----------------------------------------------------------------------
class ProjectRule:
    """One whole-program invariant, one diagnostic code (RPL1xx-3xx)."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def _diag(
        self, module: ModuleFacts, line: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module.display_path,
            line=line,
            col=col,
            code=self.code,
            message=message,
        )
