"""The reprolint rule set (RPL001–RPL005).

Each rule is a small, self-contained AST pass.  Rules are *scoped*:
``applies_to`` decides from the module path (posix, relative to the
source root, e.g. ``repro/sim/engine.py``) whether the invariant holds
in that file at all, so test helpers and benchmarks are not held to
simulation-only contracts.  Rules report candidate violations; the
runner then subtracts whitelist entries and inline suppressions.

Static analysis without type inference cannot see every violation (an
unordered ``set`` bound to a variable and iterated three lines later
escapes RPL003).  The rules therefore aim for *zero false positives on
idiomatic code* and catch the syntactic forms that have actually
appeared in this codebase; the golden serial==pool digest suite
remains the dynamic backstop.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = ["Rule", "ALL_RULES", "dotted_name"]

# Packages whose code runs inside the simulation clock (RPL002 scope).
SIM_PACKAGES: Tuple[str, ...] = (
    "repro/sim/",
    "repro/defense/",
    "repro/pushback/",
    "repro/honeypots/",
)

# numpy.random attributes that are types/infrastructure, not draws.
_NP_RANDOM_TYPES = frozenset(
    {"Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox", "MT19937"}
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
    }
)

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)

_TEXT_PRODUCERS = frozenset({"str", "repr", "format", "bytes", "ascii"})
_TEXT_METHODS = frozenset({"encode", "decode", "format", "join", "lower", "upper", "strip"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: one reproducibility invariant, one diagnostic code."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def applies_to(self, module_path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def _diag(
        self, module_path: str, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class NoAdHocRandomness(Rule):
    """RPL001 — all randomness flows through ``RngRegistry.stream()``."""

    code = "RPL001"
    name = "no-adhoc-randomness"
    rationale = (
        "a stray `import random` or `np.random.default_rng` creates RNG "
        "state outside the named-stream registry, so results silently "
        "depend on import/creation order and stop being a pure function "
        "of the master seed"
    )

    def applies_to(self, module_path: str) -> bool:
        return module_path.startswith("repro/")

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._diag(
                            module_path,
                            node,
                            "stdlib `random` imported — draw from a named "
                            "RngRegistry stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self._diag(
                        module_path,
                        node,
                        "stdlib `random` imported — draw from a named "
                        "RngRegistry stream instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                # <anything>.random.<fn>(...) — numpy module-level RNG
                # (np.random.default_rng / np.random.seed / legacy
                # np.random.rand et al.).  Generator *instances* are
                # named rng/_rng/..., never `random`, so instance draws
                # like rng.uniform() pass.
                if (
                    len(parts) >= 2
                    and parts[-2] == "random"
                    and parts[-1] not in _NP_RANDOM_TYPES
                    # plain `random.x()` is reported at its import site
                    and len(parts) >= 3
                ):
                    yield self._diag(
                        module_path,
                        node,
                        f"`{dotted}` bypasses the RngRegistry — derive a "
                        "seed with derive_seed() or use a named stream",
                    )


class NoWallClockInSim(Rule):
    """RPL002 — simulation code never reads the wall clock."""

    code = "RPL002"
    name = "no-wall-clock-in-sim"
    rationale = (
        "simulated components must depend only on the event-driven sim "
        "clock; a wall-clock read (time.time, datetime.now, "
        "perf_counter) makes behaviour — and therefore captured "
        "distributions — vary with host load"
    )

    def applies_to(self, module_path: str) -> bool:
        return module_path.startswith(SIM_PACKAGES)

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        clock_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        clock_names.add(alias.asname or alias.name)
                        yield self._diag(
                            module_path,
                            node,
                            f"`from time import {alias.name}` in simulation "
                            "code — use the sim clock (`sim.now`)",
                        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if dotted in _WALL_CLOCK_CALLS:
                yield self._diag(
                    module_path,
                    node,
                    f"`{dotted}()` in simulation code — use the sim clock "
                    "(`sim.now`)",
                )
            elif parts[-1] in _DATETIME_NOW and "datetime" in parts[:-1]:
                yield self._diag(
                    module_path,
                    node,
                    f"`{dotted}()` in simulation code — use the sim clock "
                    "(`sim.now`)",
                )
            elif len(parts) == 1 and parts[0] in clock_names:
                # bare perf_counter() after `from time import perf_counter`
                # (the import itself is already reported; keep the call
                # site too so suppressions must cover the actual read)
                yield self._diag(
                    module_path,
                    node,
                    f"`{dotted}()` reads the wall clock — use the sim "
                    "clock (`sim.now`)",
                )


def _is_keys_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items")
        and not node.args
        and not node.keywords
    )


def _is_set_expr(node: ast.AST) -> bool:
    """Statically recognisable unordered-set expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        left, right = node.left, node.right
        # keys-view algebra (`a.keys() - b.keys()`) yields a *set*, so
        # its order is unordered even though plain .keys() is not.
        return (
            _is_set_expr(left)
            or _is_set_expr(right)
            or _is_keys_view(left)
            or _is_keys_view(right)
        )
    return False


class NoUnorderedIteration(Rule):
    """RPL003 — unordered sets are sorted before iteration."""

    code = "RPL003"
    name = "no-unordered-iteration"
    rationale = (
        "iterating a set (or keys-view algebra like `a.keys() - "
        "b.keys()`) yields a hash-dependent order; when that order "
        "reaches RNG draws, event scheduling, or serialized output the "
        "run stops being reproducible across processes — wrap the "
        "expression in sorted()"
    )

    def applies_to(self, module_path: str) -> bool:
        return True

    def _iter_positions(
        self, tree: ast.AST
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, "for-loop"
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield gen.iter, "comprehension"
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if (
                    node.func.id in ("list", "tuple", "enumerate")
                    and len(node.args) == 1
                    and not node.keywords
                ):
                    yield node.args[0], f"{node.func.id}()"

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        for expr, where in self._iter_positions(tree):
            if _is_set_expr(expr):
                yield self._diag(
                    module_path,
                    expr,
                    f"iteration over an unordered set expression in a "
                    f"{where} — wrap it in sorted() so the order is "
                    "deterministic",
                )


def _produces_text(node: ast.AST) -> bool:
    """Conservatively: does this expression yield str/bytes?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (str, bytes))
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return _produces_text(node.left) or _produces_text(node.right)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _TEXT_PRODUCERS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _TEXT_METHODS:
            return True
    return False


class NoHashSeedDependence(Rule):
    """RPL004 — seed derivation never depends on PYTHONHASHSEED or the OS."""

    code = "RPL004"
    name = "no-hashseed-dependence"
    rationale = (
        "`hash()` of str/bytes is salted per process by PYTHONHASHSEED, "
        "and `os.urandom` is nondeterministic by definition; a seed "
        "derived through either differs between runs and between pool "
        "workers — derive seeds with repro.sim.rng.derive_seed (SHA-256)"
    )

    def applies_to(self, module_path: str) -> bool:
        return True

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        urandom_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        urandom_names.add(alias.asname or alias.name)
                        yield self._diag(
                            module_path,
                            node,
                            "`os.urandom` imported — seeds must be "
                            "deterministic; use derive_seed()",
                        )
        in_seed_path = self._seed_function_spans(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted == "os.urandom" or (
                dotted is not None and dotted in urandom_names
            ):
                yield self._diag(
                    module_path,
                    node,
                    f"`{dotted}()` is nondeterministic — use derive_seed()",
                )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and len(node.args) == 1
            ):
                arg = node.args[0]
                if _produces_text(arg) or (
                    isinstance(arg, ast.Name)
                    and any(a <= node.lineno <= b for a, b in in_seed_path)
                ):
                    yield self._diag(
                        module_path,
                        node,
                        "builtin hash() of text is PYTHONHASHSEED-salted "
                        "— derive seeds with derive_seed() (SHA-256)",
                    )

    @staticmethod
    def _seed_function_spans(tree: ast.AST) -> List[Tuple[int, int]]:
        """Line spans of functions that look like seed-derivation paths."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if "seed" in lowered or "derive" in lowered:
                    end = getattr(node, "end_lineno", node.lineno) or node.lineno
                    spans.append((node.lineno, end))
        return spans


class NoMutableDefaults(Rule):
    """RPL005 — no mutable default arguments."""

    code = "RPL005"
    name = "no-mutable-defaults"
    rationale = (
        "a mutable default ([] / {} / set()) is created once at import "
        "and shared across calls; state leaking between scenario runs "
        "breaks run-to-run independence (and is a classic bug besides)"
    )

    def applies_to(self, module_path: str) -> bool:
        return True

    def check(self, tree: ast.AST, module_path: str) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults: Sequence[Optional[ast.expr]] = [
                *node.args.defaults,
                *node.args.kw_defaults,
            ]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    yield self._diag(
                        module_path,
                        default,
                        "mutable default argument — use None and create "
                        "the container in the body (or default_factory)",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )


ALL_RULES: Tuple[Rule, ...] = (
    NoAdHocRandomness(),
    NoWallClockInSim(),
    NoUnorderedIteration(),
    NoHashSeedDependence(),
    NoMutableDefaults(),
)
