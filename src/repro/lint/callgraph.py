"""Conservative whole-program call graph over :class:`Project` facts.

Built for one question: *which functions can run inside a simulation
event handler?*  The shard-safety pass (RPL1xx) must not flag setup
code that populates module tables at import time, only code reachable
from a ``Scheduler``/``Timer`` callback — the code that will execute
concurrently once one scenario is partitioned across worker shards.

Resolution is name-based and deliberately over-approximate:

* ``self.m(...)`` resolves to method ``m`` of the enclosing class and
  its project-local base classes; if none defines it, to *every*
  project method named ``m``.
* A bare ``f(...)`` resolves through the module's own bindings, then
  its explicit imports; a call to a project *class* resolves to that
  class's ``__init__``.
* ``obj.m(...)`` with an unknown receiver resolves to every project
  method named ``m``.

Over-approximation errs toward *more* functions being treated as
handler-reachable, i.e. toward more scrutiny, never toward silently
missing a shared-state write.  Entry points are the callables handed
to the registration APIs in
:data:`repro.lint.project.HANDLER_REGISTRATION_APIS`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .project import ModuleFacts, Project

__all__ = ["CallGraph", "FuncId"]

#: A function node: ``(module_path, qualname)``.
FuncId = Tuple[str, str]


class CallGraph:
    """Name-resolved call edges plus handler entry points."""

    def __init__(self, project: Project) -> None:
        self.project = project
        # method/function name -> every project function with that tail.
        self._by_name: Dict[str, List[FuncId]] = {}
        for mod_path, mod in project.modules.items():
            for qual in mod.functions:
                tail = qual.split(".")[-1]
                self._by_name.setdefault(tail, []).append((mod_path, qual))
        self.edges: Dict[FuncId, Set[FuncId]] = {}
        self.entries: Set[FuncId] = set()
        self._build()

    # -- resolution ----------------------------------------------------
    def _method_in_class(
        self, mod_path: str, cls_name: str, method: str
    ) -> Optional[FuncId]:
        """``method`` on ``cls_name`` (following project-local bases)."""
        seen: Set[Tuple[str, str]] = set()
        stack = [(mod_path, cls_name)]
        while stack:
            cur_mod, cur_cls = stack.pop()
            if (cur_mod, cur_cls) in seen:
                continue
            seen.add((cur_mod, cur_cls))
            mod = self.project.modules.get(cur_mod)
            if mod is None or cur_cls not in mod.classes:
                continue
            qual = f"{cur_cls}.{method}"
            if qual in mod.functions:
                return (cur_mod, qual)
            for base in mod.classes[cur_cls].bases:
                found = self.project.find_class(cur_mod, base.split(".")[-1])
                if found is not None:
                    stack.append((found[0], found[1].name))
        return None

    def _resolve_call(
        self, mod_path: str, mod: ModuleFacts, cls: Optional[str], dotted: str
    ) -> List[FuncId]:
        parts = dotted.split(".")
        tail = parts[-1]
        if parts[0] == "self" and cls is not None:
            if len(parts) == 2:
                found = self._method_in_class(mod_path, cls.split(".")[0], tail)
                if found is not None:
                    return [found]
            return self._by_name.get(tail, [])
        if len(parts) == 1:
            resolved = self.project.resolve(mod_path, tail)
            if resolved is not None:
                target_mod, symbol = resolved
                target = self.project.modules.get(target_mod)
                if target is not None:
                    if symbol in target.functions:
                        return [(target_mod, symbol)]
                    if symbol in target.classes:
                        init = f"{symbol}.__init__"
                        if init in target.functions:
                            return [(target_mod, init)]
                        return []
                return []
            # Unresolved bare name: builtin or dynamic — no edge.
            return []
        # obj.m(...) with unknown receiver: every project method named m,
        # but only when m is defined *somewhere* in the project.
        return [f for f in self._by_name.get(tail, []) if "." in f[1]]

    # -- construction --------------------------------------------------
    def _build(self) -> None:
        for mod_path, mod in self.project.modules.items():
            for qual, fn in mod.functions.items():
                node: FuncId = (mod_path, qual)
                targets = self.edges.setdefault(node, set())
                for dotted, _line, _col, _n in fn.calls:
                    targets.update(
                        self._resolve_call(mod_path, mod, fn.cls, dotted)
                    )
                for kind, ref in fn.registered_callbacks:
                    if kind == "self" and fn.cls is not None:
                        found = self._method_in_class(
                            mod_path, fn.cls.split(".")[0], ref
                        )
                        entries = (
                            [found]
                            if found is not None
                            else self._by_name.get(ref, [])
                        )
                    else:
                        entries = self._resolve_call(mod_path, mod, fn.cls, ref)
                    self.entries.update(entries)

    # -- queries -------------------------------------------------------
    def handler_reachable(self) -> FrozenSet[FuncId]:
        """Entry points plus everything transitively callable from them."""
        seen: Set[FuncId] = set()
        queue = deque(sorted(self.entries))
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            for target in self.edges.get(node, ()):
                if target not in seen:
                    queue.append(target)
        return frozenset(seen)
