"""SARIF 2.1.0 emitter for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS 2.1.0) is the
format GitHub code scanning ingests; emitting it lets the CI
``static-analysis`` job surface reprolint findings as inline PR
annotations via ``github/codeql-action/upload-sarif``.

The emitter maps each :class:`~repro.lint.diagnostics.Diagnostic` to a
``result`` with a ``physicalLocation``, and publishes every rule's
metadata (name, rationale) in the tool's ``rules`` array so the code
scanning UI can render per-rule help.  Output is fully deterministic:
results arrive pre-sorted from the runner and rule metadata is sorted
by rule id, so two runs over the same tree are byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .diagnostics import Diagnostic

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool identity published in every run object.
_TOOL_NAME = "reprolint"
_TOOL_URI = "https://github.com/"  # repo-relative; overridden by upload step


def _rule_metadata(rules: Sequence[object]) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    seen = set()
    for rule in rules:
        code = getattr(rule, "code", "")
        if not code or code in seen:
            continue
        seen.add(code)
        out.append(
            {
                "id": code,
                "name": getattr(rule, "name", code),
                "shortDescription": {"text": getattr(rule, "name", code)},
                "fullDescription": {"text": getattr(rule, "rationale", "")},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return sorted(out, key=lambda r: str(r["id"]))


def to_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Sequence[object],
    tool_version: str = "2",
) -> Dict[str, object]:
    """Build the SARIF log object (plain dict, json-serializable)."""
    rule_ids = [str(meta["id"]) for meta in _rule_metadata(rules)]
    index = {code: i for i, code in enumerate(rule_ids)}
    results: List[Dict[str, object]] = []
    for diag in diagnostics:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        if diag.code in index:
            result["ruleIndex"] = index[diag.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": tool_version,
                        "informationUri": _TOOL_URI,
                        "rules": _rule_metadata(rules),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Sequence[object],
    tool_version: str = "2",
) -> str:
    """Deterministic SARIF text (sorted keys, trailing newline)."""
    doc = to_sarif(diagnostics, rules, tool_version=tool_version)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
