"""reprolint — AST-based determinism & reproducibility linter.

The reproduction's headline guarantee — bit-identical results for a
given seed regardless of worker count — rests on conventions that
nothing in the interpreter enforces: all randomness flows through the
named streams of :class:`repro.sim.rng.RngRegistry`, simulation code
never reads wall clocks, iteration that reaches scheduling or
serialized output never depends on set ordering, and seed derivation
never passes through ``PYTHONHASHSEED``-dependent ``hash()``.

This package makes those conventions machine-checked.  It is a
standalone static-analysis pass over Python source (stdlib :mod:`ast`
only, no third-party dependencies) at two granularities.

Per-file rules, one per invariant:

========  ==========================================================
 Code      Invariant
========  ==========================================================
 RPL001    no ad-hoc randomness outside ``repro/sim/rng.py`` and
           whitelisted sites — draw from ``RngRegistry.stream()``
 RPL002    no wall-clock reads inside simulation packages
 RPL003    no iteration over unordered set expressions without
           ``sorted()``
 RPL004    no ``hash()`` of str/bytes (PYTHONHASHSEED-dependent) and
           no ``os.urandom`` in seed paths
 RPL005    no mutable default arguments
========  ==========================================================

Whole-program passes (``repro lint --project``) over the loaded
:class:`~repro.lint.project.Project` — import graph, symbol table and
the handler call graph (:mod:`repro.lint.callgraph`):

========  ==========================================================
 Family    Invariant (see :mod:`repro.lint.passes`)
========  ==========================================================
 RPL1xx    shard-safety: no event handler reaches shared mutable
           state (module globals, class attributes, captured
           containers) — the static precondition for partitioning
           one scenario across worker shards
 RPL2xx    RNG-stream registry: stream names are literal, unique
           across modules, and drawn from seeded registries
 RPL3xx    journal/telemetry schema: emitted journal kinds and the
           ``JOURNAL_KINDS`` table agree in both directions; one
           metric name maps to one instrument type
========  ==========================================================

Diagnostics can be suppressed per line with ``# reprolint:
ignore[RPL001]`` (optionally ``-- reason``); file-level exemptions
with a documented rationale live in :mod:`repro.lint.whitelist`;
accepted pre-existing findings live in a checked-in baseline
(:mod:`repro.lint.baseline`).  ``--format sarif`` emits SARIF 2.1.0
(:mod:`repro.lint.sarif`) for GitHub code scanning.

Run it as ``repro lint [paths...] [--project]`` or ``python -m repro
lint``; the suite's meta-tests assert the repo itself stays clean at
both granularities.
"""

from __future__ import annotations

from .baseline import BASELINE_SCHEMA, apply_baseline, load_baseline
from .diagnostics import Diagnostic
from .passes import ALL_PROJECT_RULES
from .project import Project, ProjectRule
from .rules import ALL_RULES, Rule
from .runner import (
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
    main,
    project_pass_diagnostics,
)
from .sarif import render_sarif, to_sarif
from .whitelist import WHITELIST, whitelisted_reason

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "BASELINE_SCHEMA",
    "Diagnostic",
    "Project",
    "ProjectRule",
    "Rule",
    "WHITELIST",
    "apply_baseline",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "main",
    "project_pass_diagnostics",
    "render_sarif",
    "to_sarif",
    "whitelisted_reason",
]
