"""reprolint — AST-based determinism & reproducibility linter.

The reproduction's headline guarantee — bit-identical results for a
given seed regardless of worker count — rests on conventions that
nothing in the interpreter enforces: all randomness flows through the
named streams of :class:`repro.sim.rng.RngRegistry`, simulation code
never reads wall clocks, iteration that reaches scheduling or
serialized output never depends on set ordering, and seed derivation
never passes through ``PYTHONHASHSEED``-dependent ``hash()``.

This package makes those conventions machine-checked.  It is a
standalone static-analysis pass over Python source (stdlib :mod:`ast`
only, no third-party dependencies) with one rule per invariant:

========  ==========================================================
 Code      Invariant
========  ==========================================================
 RPL001    no ad-hoc randomness outside ``repro/sim/rng.py`` and
           whitelisted sites — draw from ``RngRegistry.stream()``
 RPL002    no wall-clock reads inside simulation packages
 RPL003    no iteration over unordered set expressions without
           ``sorted()``
 RPL004    no ``hash()`` of str/bytes (PYTHONHASHSEED-dependent) and
           no ``os.urandom`` in seed paths
 RPL005    no mutable default arguments
========  ==========================================================

Diagnostics can be suppressed per line with ``# reprolint:
ignore[RPL001]`` (optionally ``-- reason``); file-level exemptions
with a documented rationale live in :mod:`repro.lint.whitelist`.

Run it as ``repro lint [paths...]`` or ``python -m repro lint``; the
suite's meta-test asserts the repo itself stays clean.
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .rules import ALL_RULES, Rule
from .runner import lint_file, lint_paths, lint_source, main
from .whitelist import WHITELIST, whitelisted_reason

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "Rule",
    "WHITELIST",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "whitelisted_reason",
]
