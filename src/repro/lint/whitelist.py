"""File-level rule exemptions, each with a documented rationale.

A whitelist entry says "this module is *allowed* to violate this rule,
and here is why" — it is the reviewed, durable form of an inline
``# reprolint: ignore[...]`` suppression.  Keys are module paths in
posix form relative to the package root (``repro/...``); a key ending
in ``/`` exempts the whole subtree.  The reason string is part of the
contract: a whitelist entry without a reason is rejected at import
time, so every exemption stays self-documenting.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["WHITELIST", "whitelisted_reason"]

# module path (or "dir/" prefix) -> rule code -> rationale
WHITELIST: Dict[str, Dict[str, str]] = {
    "repro/sim/rng.py": {
        "RPL001": (
            "the RngRegistry itself — the single sanctioned "
            "np.random.default_rng call site all streams derive from"
        ),
        "RPL202": (
            "the registry implementation: stream()/spawn() forward their "
            "name *parameter* to derive_seed, so the argument is dynamic "
            "by definition; every caller-facing name is still checked at "
            "the call sites"
        ),
    },
    "repro/sim/queues.py": {
        "RPL001": (
            "REDQueue keeps a private Generator seeded via "
            "derive_seed(seed, 'red-queue') so its drop coin cannot "
            "perturb (or be perturbed by) any shared experiment stream; "
            "routing it through a registry would couple queue drops to "
            "stream creation order"
        ),
    },
    "repro/honeypots/schedule.py": {
        "RPL001": (
            "the roaming schedule's RNG is seeded from the hash-chain "
            "key K_i: clients must recompute the active set from the "
            "disclosed key alone, so the seed is cryptographic state, "
            "not experiment state, and cannot come from a registry"
        ),
    },
    "repro/obs/": {
        "RPL002": (
            "telemetry measures wall-clock durations by design; "
            "observability never feeds back into simulation state"
        ),
    },
    "repro/obs/stream.py": {
        "RPL002": (
            "the streamer's wall-clock flush cap (time.monotonic at "
            "stride granularity) decides only *when* a snapshot is "
            "written, never what the simulation computes; the journal "
            "byte-identity test (streaming on vs off) enforces that "
            "the clock cannot leak into results"
        ),
    },
    "repro/parallel/": {
        "RPL002": (
            "the worker pool times out and retries real subprocesses, "
            "which requires real clocks; task *results* remain a pure "
            "function of the derived task seed"
        ),
    },
    "repro/parallel/seeds.py": {
        "RPL202": (
            "task seeds derive from runtime task names "
            "(derive_seed(root_seed, name)) by design: the pool's "
            "order-independence proof rests on the name, not on stream "
            "registration; golden-journal tests pin the exact values"
        ),
    },
    "repro/experiments/validation.py": {
        "RPL202": (
            "replication seeds embed the run index "
            "(f'validation-{run_index}') so each of the n validation "
            "runs draws an independent stream; the index set is bounded "
            "and printed in the validation report, and the published "
            "tolerance gates pin the resulting values"
        ),
    },
}


def _validate() -> None:
    for path, rules in WHITELIST.items():
        for code, reason in rules.items():
            if not reason or not reason.strip():
                raise ValueError(
                    f"whitelist entry {path}:{code} has no rationale"
                )


_validate()


def whitelisted_reason(module_path: str, code: str) -> Optional[str]:
    """Rationale string if ``code`` is exempt in ``module_path``, else None.

    ``module_path`` is the posix path of the module relative to the
    source root (e.g. ``repro/sim/engine.py``).
    """
    entry = WHITELIST.get(module_path)
    if entry is not None and code in entry:
        return entry[code]
    for prefix, rules in WHITELIST.items():
        if prefix.endswith("/") and module_path.startswith(prefix):
            if code in rules:
                return rules[code]
    return None
