"""RPL3xx — journal/telemetry schema coherence, checked statically.

The ``repro.journal/1`` journal is the repo's determinism witness and
the input to replay/report tooling.  That tooling can only be trusted
if the set of event kinds is closed: every kind the code emits appears
in the :data:`repro.obs.journal.JOURNAL_KINDS` schema table (so replay,
``repro report`` and downstream consumers know the vocabulary), and
every table entry is actually emitted somewhere (so the table doesn't
document fiction).  Same story for metric names: one name must mean
one instrument type, or exported series collide.

* **RPL301** — a ``journal.record("kind", ...)`` literal absent from
  the ``JOURNAL_KINDS`` table (or no table exists at all).
* **RPL302** — a ``JOURNAL_KINDS`` entry no code ever emits.
* **RPL303** — a journal kind built at runtime (non-literal).
* **RPL304** — one metric name acquired as two instrument types
  (e.g. both ``counter("x")`` and ``gauge("x")``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..diagnostics import Diagnostic
from ..project import ModuleFacts, Project, ProjectRule

__all__ = [
    "KindNeverEmitted",
    "MetricInstrumentConflict",
    "NonLiteralJournalKind",
    "UndocumentedJournalKind",
]


def _kind_tables(
    project: Project,
) -> List[Tuple[str, ModuleFacts, Dict[str, int]]]:
    """All ``JOURNAL_KINDS`` tables in the project (usually exactly one)."""
    out = []
    for mod_path, mod in project.modules.items():
        if mod.journal_kinds_table is not None:
            out.append((mod_path, mod, mod.journal_kinds_table))
    return out


class UndocumentedJournalKind(ProjectRule):
    code = "RPL301"
    name = "no journal kind missing from the JOURNAL_KINDS schema table"
    rationale = (
        "replay/report tooling trusts the schema table as the closed "
        "vocabulary of repro.journal/1; an undocumented kind is invisible "
        "to consumers that validate against it"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        tables = _kind_tables(project)
        documented: Set[str] = set()
        for _path, _mod, table in tables:
            documented.update(table)
        for mod_path, mod in project.modules.items():
            for use in mod.journal_uses:
                if use.kind is None or use.kind in documented:
                    continue
                if tables:
                    msg = (
                        f"journal kind '{use.kind}' is not in the "
                        f"JOURNAL_KINDS schema table ({tables[0][0]}) — add "
                        f"it so replay/report tooling sees it"
                    )
                else:
                    msg = (
                        f"journal kind '{use.kind}' emitted but the project "
                        f"has no JOURNAL_KINDS schema table — declare one in "
                        f"the journal module"
                    )
                yield self._diag(mod, use.line, use.col, msg)


class KindNeverEmitted(ProjectRule):
    code = "RPL302"
    name = "no JOURNAL_KINDS entry that is never emitted"
    rationale = (
        "a schema entry nothing emits documents fiction; either the emitter "
        "was lost in a refactor or the entry should be removed"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        emitted: Set[str] = set()
        for mod in project.modules.values():
            emitted.update(
                use.kind for use in mod.journal_uses if use.kind is not None
            )
        for _mod_path, mod, table in _kind_tables(project):
            for kind in sorted(table):
                if kind not in emitted:
                    yield self._diag(
                        mod,
                        table[kind],
                        1,
                        f"JOURNAL_KINDS entry '{kind}' is never emitted by "
                        f"any journal.record() call in the project",
                    )


class NonLiteralJournalKind(ProjectRule):
    code = "RPL303"
    name = "no dynamic journal kinds"
    rationale = (
        "a kind built at runtime cannot be checked against the schema "
        "table, so the journal vocabulary silently stops being closed"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for mod_path, mod in project.modules.items():
            for use in mod.journal_uses:
                if use.kind is None:
                    yield self._diag(
                        mod,
                        use.line,
                        use.col,
                        "non-literal journal kind passed to journal.record() "
                        "— use a string literal from the JOURNAL_KINDS table",
                    )


class MetricInstrumentConflict(ProjectRule):
    code = "RPL304"
    name = "no metric name acquired as two instrument types"
    rationale = (
        "one exported series name must map to one instrument; a name used "
        "as both counter and gauge corrupts merged telemetry"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        by_name: Dict[str, Set[str]] = {}
        for mod in project.modules.values():
            for use in mod.metric_uses:
                by_name.setdefault(use.name, set()).add(use.instrument)
        for mod_path, mod in project.modules.items():
            for use in mod.metric_uses:
                instruments = by_name[use.name]
                if len(instruments) > 1:
                    yield self._diag(
                        mod,
                        use.line,
                        use.col,
                        f"metric '{use.name}' is acquired as "
                        f"{' and '.join(sorted(instruments))} — one name, "
                        f"one instrument type",
                    )
