"""RPL1xx — shard-safety: no shared mutable state behind event handlers.

The ROADMAP's next dynamic milestone is partitioning one scenario's
topology across worker shards.  That is only sound if event handlers
communicate exclusively through the scheduler (messages/events), never
through memory shared behind the scheduler's back.  These passes check
the three ways Python code acquires such sharing:

* **RPL101** — a handler-reachable function writes module-level
  mutable state: rebinds a ``global``, or mutates a module-level
  container (its own module's or one imported from another module).
  Module state is process-wide; two shards would race on it, and a
  single-process replay would order the writes differently.
* **RPL102** — class-level mutable containers (``class C: cache = {}``)
  or writes through the class object (``C.x = ...``, ``cls.x = ...``,
  ``type(self).x = ...``).  Class attributes are shared by *all*
  instances, so two hosts on different shards silently share a dict.
* **RPL103** — ``__init__`` stores a mutable-container parameter
  without a defensive copy (``self.attrs = attrs``).  The captured
  container aliases the caller's object; mutations on either side leak
  across the component boundary — and across shards once components
  are distributed.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..callgraph import CallGraph
from ..diagnostics import Diagnostic
from ..project import Project, ProjectRule

__all__ = [
    "CapturedContainerParam",
    "HandlerWritesModuleState",
    "SharedClassState",
]


class HandlerWritesModuleState(ProjectRule):
    code = "RPL101"
    name = "no module-state writes in event handlers"
    rationale = (
        "functions reachable from Scheduler/Timer callbacks must not write "
        "module-level mutable state: it is shared process-wide, so sharded "
        "workers would race on it and replay order would diverge"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        graph = CallGraph(project)
        reachable = graph.handler_reachable()
        for mod_path, qual in sorted(reachable):
            mod = project.modules[mod_path]
            fn = mod.functions.get(qual)
            if fn is None or qual == "<module>":
                continue
            for name, line, col in fn.global_writes:
                yield self._diag(
                    mod,
                    line,
                    col,
                    f"handler-reachable '{qual}' rebinds module global "
                    f"'{name}' — route state through the event, not the module",
                )
            for root, chain, line, col in fn.name_mutations:
                if root in ("self", "cls") or root in fn.local_names:
                    continue
                owner = self._owning_module(project, mod_path, root)
                if owner is None:
                    continue
                owner_path, owner_name = owner
                where = (
                    "module-level"
                    if owner_path == mod_path
                    else f"'{owner_path}' module-level"
                )
                yield self._diag(
                    mod,
                    line,
                    col,
                    f"handler-reachable '{qual}' mutates {where} container "
                    f"'{owner_name}' via '{chain}' — shared across shards",
                )

    @staticmethod
    def _owning_module(
        project: Project, mod_path: str, root: str
    ) -> Optional[Tuple[str, str]]:
        """The module whose mutable binding ``root`` names, if any."""
        resolved = project.resolve(mod_path, root)
        if resolved is None:
            return None
        owner_path, symbol = resolved
        owner = project.modules.get(owner_path)
        if owner is not None and symbol in owner.module_mutables:
            return (owner_path, symbol)
        return None


class SharedClassState(ProjectRule):
    code = "RPL102"
    name = "no class-level shared mutable state"
    rationale = (
        "class attributes are shared by every instance; a class-level "
        "container or a write through the class object couples hosts/routers "
        "that sharding must keep independent"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for mod_path, mod in project.modules.items():
            for cls in mod.classes.values():
                for attr, line, col in cls.mutable_class_attrs:
                    yield self._diag(
                        mod,
                        line,
                        col,
                        f"class-level mutable container '{cls.name}.{attr}' "
                        f"is shared across all instances — initialize it in "
                        f"__init__ instead",
                    )
            for qual, fn in mod.functions.items():
                for ref, attr, line, col in fn.classattr_writes:
                    if ref in ("cls", "type(self)", "self.__class__"):
                        target = ref
                    else:
                        found = project.find_class(mod_path, ref)
                        if found is None:
                            continue
                        target = found[1].name
                    yield self._diag(
                        mod,
                        line,
                        col,
                        f"'{qual}' writes class attribute '{target}.{attr}' — "
                        f"state stored on the class is shared by every instance",
                    )


class CapturedContainerParam(ProjectRule):
    code = "RPL103"
    name = "no uncopied mutable-container parameters in __init__"
    rationale = (
        "storing a caller-owned list/dict/set without copying aliases state "
        "across components; a later mutation on either side leaks through "
        "the boundary and breaks shard isolation"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for mod_path, mod in project.modules.items():
            for qual, fn in mod.functions.items():
                for attr, param, head, line, col in fn.init_captures:
                    copy_hint = {"list": "list", "set": "set"}.get(
                        head.lower().rstrip("[]"), "dict"
                    )
                    yield self._diag(
                        mod,
                        line,
                        col,
                        f"{qual} stores mutable parameter '{param}' "
                        f"(annotated {head}) as 'self.{attr}' without "
                        f"copying — use {copy_hint}({param})",
                    )
