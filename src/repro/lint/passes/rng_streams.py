"""RPL2xx — the RNG stream registry, checked statically, repo-wide.

Determinism rests on every random draw flowing through a *named*
stream of a seeded :class:`repro.sim.rng.RngRegistry` (seeds derive as
``SHA-256(master_seed, name)``).  That convention has failure modes
only visible across module boundaries:

* **RPL201** — two unrelated modules claim the same stream name.  With
  a shared master seed they would draw *identical* sequences, silently
  correlating e.g. attacker behaviour with topology wiring.
* **RPL202** — a stream name built at runtime (f-string, variable).
  Dynamic names defeat the static registry: nothing can audit which
  streams exist, and collisions of the RPL201 kind become untestable.
  One idiom is exempt: a *stream family* — an f-string whose static
  literal head is a dotted namespace (``f"client.{leaf}"``).  Per-host
  RNG disciplines (sharded execution) need one stream per leaf; the
  family prefix keeps the registry auditable (RPL201 checks prefixes
  for collisions exactly like literal names).
* **RPL203** — ``RngRegistry()`` with no arguments.  The default seed
  silently couples the run to whatever the default happens to be,
  instead of the scenario's explicit master seed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..diagnostics import Diagnostic
from ..project import ModuleFacts, Project, ProjectRule, StreamUse

__all__ = ["DuplicateStreamName", "NonLiteralStreamName", "UnseededRegistry"]


def _family_prefix(use: StreamUse) -> str | None:
    """The auditable family prefix of a dynamic stream name, if any.

    A *stream family* is an f-string whose static literal head is a
    dotted namespace — ``f"client.{leaf}"`` claims the ``client.``
    family.  The prefix must end with the dot so a bare variable head
    (``f"{name}-x"``) stays flagged.
    """
    prefix = use.prefix
    if prefix and prefix.endswith(".") and len(prefix) > 1:
        return prefix
    return None


class DuplicateStreamName(ProjectRule):
    code = "RPL201"
    name = "no RNG stream name claimed by two modules"
    rationale = (
        "stream seeds derive from the stream name; the same name in two "
        "modules under one master seed yields identical, correlated draws"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        # Stream families (f"client.{leaf}") claim their whole prefix:
        # the claim key is "<prefix>*", and a literal name falling under
        # another module's family prefix collides with the family too.
        claims: Dict[str, List[Tuple[str, ModuleFacts, StreamUse]]] = {}
        families: Dict[str, List[Tuple[str, ModuleFacts, StreamUse]]] = {}
        for mod_path, mod in project.modules.items():
            for use in mod.streams:
                if use.name is not None:
                    claims.setdefault(use.name, []).append((mod_path, mod, use))
                elif _family_prefix(use) is not None:
                    families.setdefault(_family_prefix(use), []).append(
                        (mod_path, mod, use)
                    )
        for prefix, sites in families.items():
            key = prefix + "*"
            claims.setdefault(key, []).extend(sites)
            for name, name_sites in claims.items():
                if name != key and name.startswith(prefix):
                    claims[key] = claims[key] + name_sites
        for name in sorted(claims):
            owners: Set[str] = {mod_path for mod_path, _, _ in claims[name]}
            if len(owners) < 2:
                continue
            for mod_path, mod, use in claims[name]:
                others = ", ".join(sorted(owners - {mod_path}))
                yield self._diag(
                    mod,
                    use.line,
                    use.col,
                    f"stream name '{name}' is also claimed by {others} — "
                    f"same master seed would correlate their draws; pick a "
                    f"module-unique name",
                )


class NonLiteralStreamName(ProjectRule):
    code = "RPL202"
    name = "no dynamic RNG stream names"
    rationale = (
        "stream names are the static registry of randomness; a name built "
        "at runtime cannot be audited for collisions or replayed from docs"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for mod_path, mod in project.modules.items():
            for use in mod.streams:
                if use.name is None and _family_prefix(use) is None:
                    yield self._diag(
                        mod,
                        use.line,
                        use.col,
                        f"non-literal stream name passed to {use.api}() — "
                        f"use a string literal (or an f-string with a dotted "
                        f"literal prefix, a stream family) so the stream "
                        f"registry stays statically auditable",
                    )


class UnseededRegistry(ProjectRule):
    code = "RPL203"
    name = "no unseeded RngRegistry construction"
    rationale = (
        "RngRegistry() without an explicit seed binds the run to an "
        "implicit default instead of the scenario's master seed"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for mod_path, mod in project.modules.items():
            for qual, fn in mod.functions.items():
                for dotted, line, col, n_args in fn.calls:
                    if n_args > 0:
                        continue
                    tail = dotted.split(".")[-1]
                    if tail == "RngRegistry":
                        is_registry = True
                    else:
                        resolved = project.resolve(mod_path, tail)
                        is_registry = (
                            resolved is not None and resolved[1] == "RngRegistry"
                        )
                    if is_registry:
                        yield self._diag(
                            mod,
                            line,
                            col,
                            "RngRegistry() constructed without an explicit "
                            "master seed — pass the scenario seed",
                        )
