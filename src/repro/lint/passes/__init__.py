"""Cross-module analysis passes (reprolint v2).

Each pass is a :class:`repro.lint.project.ProjectRule`: it sees the
whole :class:`~repro.lint.project.Project` at once — import graph,
symbol table, call graph — instead of one AST.  Three rule families:

========  ==========================================================
 Code      Invariant (whole-program)
========  ==========================================================
 RPL101    no handler-reachable function writes module-level
           mutable state (shard-safety)
 RPL102    no class-level mutable containers or writes through a
           class object — state shared across all instances
 RPL103    no ``__init__`` capturing a mutable-container parameter
           without a defensive copy (cross-component aliasing)
 RPL201    no RNG stream name claimed by two different modules
 RPL202    no dynamic (non-literal) RNG stream names
 RPL203    no ``RngRegistry()`` constructed without an explicit seed
 RPL301    no journal kind emitted that is absent from the
           ``JOURNAL_KINDS`` schema table
 RPL302    no ``JOURNAL_KINDS`` entry that no code ever emits
 RPL303    no dynamic (non-literal) journal kinds
 RPL304    no metric name acquired as two instrument types
========  ==========================================================
"""

from __future__ import annotations

from typing import Tuple

from ..project import ProjectRule
from .journal_schema import (
    KindNeverEmitted,
    MetricInstrumentConflict,
    NonLiteralJournalKind,
    UndocumentedJournalKind,
)
from .rng_streams import DuplicateStreamName, NonLiteralStreamName, UnseededRegistry
from .shard_safety import (
    CapturedContainerParam,
    HandlerWritesModuleState,
    SharedClassState,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "CapturedContainerParam",
    "DuplicateStreamName",
    "HandlerWritesModuleState",
    "KindNeverEmitted",
    "MetricInstrumentConflict",
    "NonLiteralJournalKind",
    "NonLiteralStreamName",
    "ProjectRule",
    "SharedClassState",
    "UndocumentedJournalKind",
    "UnseededRegistry",
]

ALL_PROJECT_RULES: Tuple[ProjectRule, ...] = (
    HandlerWritesModuleState(),
    SharedClassState(),
    CapturedContainerParam(),
    DuplicateStreamName(),
    NonLiteralStreamName(),
    UnseededRegistry(),
    UndocumentedJournalKind(),
    KindNeverEmitted(),
    NonLiteralJournalKind(),
    MetricInstrumentConflict(),
)
