"""Baseline file: land new rules strict-for-new-code.

A baseline is a checked-in JSON artifact (``repro.lint-baseline/1``)
listing *accepted pre-existing* findings.  With ``--baseline FILE``:

* a diagnostic matching a baseline entry is suppressed (exit 0);
* a diagnostic *not* in the baseline fails the run (exit 1) — new
  code meets the bar immediately;
* a baseline entry that no longer matches any diagnostic is **drift**
  and also fails the run — fixed findings must leave the baseline, so
  it only ever shrinks.

Every entry carries a mandatory human ``reason``; loading rejects
entries without one, mirroring the whitelist contract.  Matching is by
``(path, code, message)`` — line numbers shift too easily to key on.
Regenerate with ``repro lint --project --write-baseline`` after
auditing that every surviving entry is intentional.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineError",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

BASELINE_SCHEMA = "repro.lint-baseline/1"

#: Matching key of one accepted finding.
_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """Malformed baseline file (bad schema, missing reason, ...)."""


def load_baseline(path: Path) -> Dict[_Key, str]:
    """Load and validate a baseline; returns ``{(path, code, message): reason}``."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'entries' must be a list")
    out: Dict[_Key, str] = {}
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entries[{i}] is not an object")
        missing = {"path", "code", "message", "reason"} - set(entry)
        if missing:
            raise BaselineError(
                f"{path}: entries[{i}] missing {sorted(missing)}"
            )
        reason = entry["reason"]
        if not isinstance(reason, str) or not reason.strip():
            raise BaselineError(
                f"{path}: entries[{i}] ({entry['code']} @ {entry['path']}) "
                f"has an empty reason — every accepted finding needs one"
            )
        out[(entry["path"], entry["code"], entry["message"])] = reason
    return out


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Dict[_Key, str]
) -> Tuple[List[Diagnostic], List[Diagnostic], List[_Key]]:
    """Split diagnostics against a baseline.

    Returns ``(new, accepted, stale)``: findings not in the baseline,
    findings the baseline suppresses, and baseline keys that matched
    nothing (drift — the finding was fixed but the entry remains).
    """
    new: List[Diagnostic] = []
    accepted: List[Diagnostic] = []
    matched: set = set()
    for diag in diagnostics:
        key = (diag.path, diag.code, diag.message)
        if key in baseline:
            accepted.append(diag)
            matched.add(key)
        else:
            new.append(diag)
    stale = [key for key in baseline if key not in matched]
    return new, accepted, sorted(stale)


def write_baseline(
    path: Path, diagnostics: Sequence[Diagnostic], reason: str
) -> None:
    """Write the current findings as a fresh baseline (one shared reason)."""
    seen: set = set()
    entries = []
    for diag in sorted(diagnostics):
        key = (diag.path, diag.code, diag.message)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "path": diag.path,
                "code": diag.code,
                "message": diag.message,
                "reason": reason,
            }
        )
    doc = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
