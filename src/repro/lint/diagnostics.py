"""Diagnostic records emitted by the reprolint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a source location.

    Ordering is (path, line, col, code) so a sorted report reads
    top-to-bottom per file regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``file:line:col: CODE message`` — the CLI output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
