"""File discovery, suppression handling, and the ``repro lint`` entry.

Diagnostic flow: every applicable rule reports candidates, then the
runner drops (a) whitelist exemptions from :mod:`repro.lint.whitelist`
and (b) lines carrying an inline suppression::

    foo = set(bar)  # reprolint: ignore[RPL003] -- membership only

``ignore`` with no bracket suppresses every rule on the line; a
suppression on a line that is *only* a comment applies to the next
code line, so long expressions stay readable.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path, PurePosixPath
from typing import FrozenSet, Iterable, List, Optional, Sequence

from .diagnostics import Diagnostic
from .rules import ALL_RULES, Rule
from .whitelist import WHITELIST, whitelisted_reason

__all__ = ["lint_source", "lint_file", "lint_paths", "main"]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9,\s]+)\])?"
)

# Directories never scanned: caches, VCS internals, and the linter's
# own bad-on-purpose test fixtures.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", "build", "dist", ".eggs", "fixtures"}
)


def _suppressed_codes(line: str) -> Optional[FrozenSet[str]]:
    """Codes suppressed on this physical line; empty set means 'all'."""
    m = _SUPPRESS_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def _is_suppressed(diag: Diagnostic, lines: Sequence[str]) -> bool:
    candidates: List[str] = []
    if 1 <= diag.line <= len(lines):
        candidates.append(lines[diag.line - 1])
        # A contiguous block of comment-only lines directly above
        # covers the next code line (suppressions may wrap).
        prev = diag.line - 2
        while prev >= 0 and lines[prev].lstrip().startswith("#"):
            candidates.append(lines[prev])
            prev -= 1
    for line in candidates:
        codes = _suppressed_codes(line)
        if codes is not None and (not codes or diag.code in codes):
            return True
    return False


def module_path_of(path: Path) -> str:
    """Posix module path relative to the source root.

    ``.../src/repro/sim/engine.py`` → ``repro/sim/engine.py`` so rule
    scoping and the whitelist are independent of where the repo lives;
    files outside a ``src/`` root (tests, benchmarks) keep their path
    relative to the current directory when possible.
    """
    posix = PurePosixPath(path.as_posix())
    parts = posix.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            return str(PurePosixPath(*parts[i + 1:]))
    try:
        return Path(path).resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return posix.as_posix()


def lint_source(
    source: str,
    module_path: str,
    rules: Sequence[Rule] = ALL_RULES,
    display_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one module's source text.

    ``module_path`` drives rule scoping and the whitelist (posix,
    e.g. ``repro/sim/engine.py``); ``display_path`` overrides the path
    shown in diagnostics (defaults to ``module_path``).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=display_path or module_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="RPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    out: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(module_path):
            continue
        if whitelisted_reason(module_path, rule.code) is not None:
            continue
        for diag in rule.check(tree, module_path):
            if _is_suppressed(diag, lines):
                continue
            if display_path is not None:
                diag = Diagnostic(
                    display_path, diag.line, diag.col, diag.code, diag.message
                )
            out.append(diag)
    return sorted(out)


def lint_file(path: Path, rules: Sequence[Rule] = ALL_RULES) -> List[Diagnostic]:
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        module_path_of(path),
        rules=rules,
        display_path=str(path),
    )


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not _SKIP_DIRS.intersection(f.parts):
                    yield f
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule] = ALL_RULES
) -> List[Diagnostic]:
    """Lint files and directory trees; returns sorted diagnostics."""
    out: List[Diagnostic] = []
    for f in _iter_python_files(paths):
        out.extend(lint_file(f, rules=rules))
    return sorted(out)


def describe_rules() -> str:
    lines = ["reprolint rules:"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"      {rule.rationale}")
    lines.append("")
    lines.append("whitelisted sites (repro/lint/whitelist.py):")
    for path in sorted(WHITELIST):
        for code, reason in sorted(WHITELIST[path].items()):
            lines.append(f"  {path} [{code}]: {reason}")
    lines.append("")
    lines.append(
        "suppress one line with `# reprolint: ignore[RPL00x] -- reason`"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro lint`` / ``python -m repro.lint`` entry point.

    Exit status: 0 clean, 1 violations found, 2 usage error.
    """
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="check the repo's determinism & reproducibility invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe each rule, its rationale, and the whitelist",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(describe_rules())
        return 0
    try:
        diagnostics = lint_paths(args.paths or ["src"])
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        n = len(diagnostics)
        print(f"repro lint: {n} violation{'s' if n != 1 else ''}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
