"""File discovery, suppression handling, and the ``repro lint`` entry.

Diagnostic flow: every applicable rule reports candidates, then the
runner drops (a) whitelist exemptions from :mod:`repro.lint.whitelist`
and (b) lines carrying an inline suppression::

    foo = set(bar)  # reprolint: ignore[RPL003] -- membership only

``ignore`` with no bracket suppresses every rule on the line; a
suppression on a line that is *only* a comment applies to the next
code line, so long expressions stay readable.

Two analysis granularities compose:

* per-file rules (:mod:`repro.lint.rules`, RPL00x) run over every
  path argument;
* whole-program passes (:mod:`repro.lint.passes`, RPL1xx-3xx) run
  when ``--project [ROOT]`` is given: the project loader parses the
  tree once (``--jobs N`` parallelizes parsing across processes) and
  the cross-module passes check shard-safety, the RNG stream registry
  and the journal schema.

Output is a deterministically ordered diagnostic list — sorted by
(path, line, col, code) — as plain text or SARIF 2.1.0
(``--format sarif``), optionally filtered through a checked-in
baseline (``--baseline``, see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from collections import Counter
from pathlib import Path, PurePosixPath
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .diagnostics import Diagnostic
from .passes import ALL_PROJECT_RULES
from .project import Project, ProjectRule
from .rules import ALL_RULES, Rule
from .sarif import render_sarif
from .whitelist import WHITELIST, whitelisted_reason

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_project",
    "project_pass_diagnostics",
    "main",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9,\s]+)\])?"
)

# Directories never scanned: caches, VCS internals, and the linter's
# own bad-on-purpose test fixtures.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", "build", "dist", ".eggs", "fixtures"}
)

_EXIT_DOC = """\
exit status:
  0  clean (or every finding matched the baseline)
  1  violations found, or baseline drift (stale entries for findings
     that no longer exist — remove them from the baseline)
  2  usage error: bad path, malformed baseline, bad flags
"""


def _suppressed_codes(line: str) -> Optional[FrozenSet[str]]:
    """Codes suppressed on this physical line; empty set means 'all'."""
    m = _SUPPRESS_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def _is_suppressed(diag: Diagnostic, lines: Sequence[str]) -> bool:
    candidates: List[str] = []
    if 1 <= diag.line <= len(lines):
        candidates.append(lines[diag.line - 1])
        # A contiguous block of comment-only lines directly above
        # covers the next code line (suppressions may wrap).
        prev = diag.line - 2
        while prev >= 0 and lines[prev].lstrip().startswith("#"):
            candidates.append(lines[prev])
            prev -= 1
    for line in candidates:
        codes = _suppressed_codes(line)
        if codes is not None and (not codes or diag.code in codes):
            return True
    return False


def module_path_of(path: Path) -> str:
    """Posix module path relative to the source root.

    ``.../src/repro/sim/engine.py`` → ``repro/sim/engine.py`` so rule
    scoping and the whitelist are independent of where the repo lives;
    files outside a ``src/`` root (tests, benchmarks) keep their path
    relative to the current directory when possible.
    """
    posix = PurePosixPath(path.as_posix())
    parts = posix.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            return str(PurePosixPath(*parts[i + 1:]))
    try:
        return Path(path).resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return posix.as_posix()


def lint_source(
    source: str,
    module_path: str,
    rules: Sequence[Rule] = ALL_RULES,
    display_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one module's source text.

    ``module_path`` drives rule scoping and the whitelist (posix,
    e.g. ``repro/sim/engine.py``); ``display_path`` overrides the path
    shown in diagnostics (defaults to ``module_path``).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=display_path or module_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="RPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    out: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(module_path):
            continue
        if whitelisted_reason(module_path, rule.code) is not None:
            continue
        for diag in rule.check(tree, module_path):
            if _is_suppressed(diag, lines):
                continue
            if display_path is not None:
                diag = Diagnostic(
                    display_path, diag.line, diag.col, diag.code, diag.message
                )
            out.append(diag)
    return sorted(out)


def lint_file(path: Path, rules: Sequence[Rule] = ALL_RULES) -> List[Diagnostic]:
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        module_path_of(path),
        rules=rules,
        display_path=str(path),
    )


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not _SKIP_DIRS.intersection(f.parts):
                    yield f
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule] = ALL_RULES
) -> List[Diagnostic]:
    """Lint files and directory trees; returns sorted diagnostics."""
    out: List[Diagnostic] = []
    for f in _iter_python_files(paths):
        out.extend(lint_file(f, rules=rules))
    return sorted(out)


def project_pass_diagnostics(
    project: Project,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
) -> List[Diagnostic]:
    """Run the cross-module passes; whitelist/suppressions applied."""
    module_path_by_display = {
        mod.display_path: path for path, mod in project.modules.items()
    }
    out: List[Diagnostic] = []
    for rule in project_rules:
        for diag in rule.check(project):
            module_path = module_path_by_display.get(diag.path, diag.path)
            if whitelisted_reason(module_path, rule.code) is not None:
                continue
            if project.is_suppressed(diag, module_path):
                continue
            out.append(diag)
    # Parse failures surface once, through the per-file RPL000 path —
    # but a project loaded directly (API use) should not hide them.
    for path, mod in project.modules.items():
        if mod.parse_error is not None:
            line, col, msg = mod.parse_error
            out.append(
                Diagnostic(mod.display_path, line, col, "RPL000",
                           f"syntax error: {msg}")
            )
    return sorted(set(out))


def lint_project(
    root: str = "src",
    jobs: Optional[int] = None,
    rules: Sequence[Rule] = ALL_RULES,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
) -> List[Diagnostic]:
    """Whole-program lint: per-file rules plus cross-module passes."""
    project = Project.load(root, jobs=jobs)
    out: Set[Diagnostic] = set(lint_paths([root], rules=rules))
    out.update(project_pass_diagnostics(project, project_rules))
    return sorted(out)


def describe_rules() -> str:
    lines = ["reprolint rules (per-file):"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"      {rule.rationale}")
    lines.append("")
    lines.append("whole-program passes (--project):")
    for prule in ALL_PROJECT_RULES:
        lines.append(f"  {prule.code}  {prule.name}")
        lines.append(f"      {prule.rationale}")
    lines.append("")
    lines.append("whitelisted sites (repro/lint/whitelist.py):")
    for path in sorted(WHITELIST):
        for code, reason in sorted(WHITELIST[path].items()):
            lines.append(f"  {path} [{code}]: {reason}")
    lines.append("")
    lines.append(
        "suppress one line with `# reprolint: ignore[RPL00x] -- reason`"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro lint`` / ``python -m repro.lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="check the repo's determinism & reproducibility invariants",
        epilog=_EXIT_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--project",
        nargs="?",
        const="src",
        default=None,
        metavar="ROOT",
        help="also run the whole-program passes (RPL1xx shard-safety, "
        "RPL2xx RNG streams, RPL3xx journal schema) over ROOT "
        "(default when flag is given: src)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parse the project with N worker processes",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format: human-readable text or SARIF 2.1.0",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this baseline file; "
        "stale entries (drift) fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a one-line summary (files, findings per rule)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe each rule, its rationale, and the whitelist",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(describe_rules())
        return 0
    if args.write_baseline and not args.baseline:
        print("repro lint: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    paths = list(args.paths or ["src"])
    try:
        checked = {str(f) for f in _iter_python_files(paths)}
        diag_set: Set[Diagnostic] = set(lint_paths(paths))
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.project is not None:
        if not Path(args.project).is_dir():
            print(f"repro lint: not a directory: {args.project}",
                  file=sys.stderr)
            return 2
        project = Project.load(args.project, jobs=args.jobs)
        checked.update(m.display_path for m in project.modules.values())
        diag_set.update(project_pass_diagnostics(project))
    diagnostics = sorted(diag_set)

    if args.write_baseline:
        write_baseline(
            Path(args.baseline),
            diagnostics,
            reason="accepted pre-existing finding — audit before committing",
        )
        print(
            f"repro lint: wrote {len(diagnostics)} finding"
            f"{'s' if len(diagnostics) != 1 else ''} to {args.baseline}"
        )
        return 0

    accepted: List[Diagnostic] = []
    stale: List = []
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, BaselineError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        diagnostics, accepted, stale = apply_baseline(diagnostics, baseline)

    if args.format == "sarif":
        text = render_sarif(diagnostics, (*ALL_RULES, *ALL_PROJECT_RULES))
    else:
        text = "".join(f"{d.render()}\n" for d in diagnostics)
    if args.output is not None:
        Path(args.output).write_text(text, encoding="utf-8")
    elif text:
        sys.stdout.write(text)

    for key in stale:
        print(
            f"repro lint: baseline drift — stale entry {key[1]} @ {key[0]} "
            f"matches nothing; remove it from the baseline",
            file=sys.stderr,
        )
    if args.stats:
        by_code = Counter(d.code for d in diagnostics)
        per_rule = " ".join(
            f"{code}={n}" for code, n in sorted(by_code.items())
        )
        print(
            f"repro lint --stats: {len(checked)} files, "
            f"{len(diagnostics) + len(accepted)} findings "
            f"({len(accepted)} baselined, {len(stale)} stale)"
            + (f", new: {per_rule}" if per_rule else "")
        )
    if args.format == "text" and diagnostics and args.output is None:
        n = len(diagnostics)
        print(f"repro lint: {n} violation{'s' if n != 1 else ''}")
    return 1 if diagnostics or stale else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
