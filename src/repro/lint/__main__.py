"""``python -m repro.lint`` — standalone entry to the reprolint pass."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
