"""Amplifier nodes for reflection/amplification workloads.

An amplifier is an ordinary leaf host running an abusable service: for
every *trigger* packet it receives (flow ``("trigger", bot)``, source
spoofed to the victim's address) it reflects ``gain`` response packets
to the trigger's claimed source — the victim — under its **own, true**
address.  From the defense's point of view the amplifier *is* the
attack source: reflected packets carry ``flow=("attack", amplifier)``
and ``true_src=amplifier``, so honeypot back-propagation captures the
reflector, not the bot.

Stage two of the traceback lives in the trigger log: the amplifier
records the true source of every trigger it served
(:attr:`AmplifierApp.trigger_sources`), which the scenario surfaces as
``traced_sources`` once the reflector is captured, and journals as a
``reflector_traceback`` event.  The first trigger from each distinct
source is journaled as a ``reflect_hop`` (one event per edge of the
reflection graph, never per packet).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet, PacketKind

__all__ = ["AmplifierApp"]


class AmplifierApp:
    """An abusable reflector service on a leaf host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        amplification: float = 5.0,
        journal: Optional[Any] = None,
    ) -> None:
        if amplification < 1.0:
            raise ValueError(f"amplification must be >= 1 (got {amplification})")
        self.sim = sim
        self.host = host
        self.gain = int(amplification)
        self.journal = journal
        self.triggers_received = 0
        self.packets_reflected = 0
        # Stage-two evidence: trigger true_src -> trigger count.
        self.trigger_sources: Dict[int, int] = {}
        host.on_deliver(self._on_deliver)

    def _on_deliver(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.DATA or not pkt.flow or pkt.flow[0] != "trigger":
            return
        self.triggers_received += 1
        source = int(pkt.true_src)
        victim = int(pkt.src)
        if source not in self.trigger_sources:
            self.trigger_sources[source] = 0
            if self.journal is not None:
                self.journal.record(
                    "reflect_hop",
                    amplifier=int(self.host.addr),
                    source=source,
                    victim=victim,
                    gain=self.gain,
                )
        self.trigger_sources[source] += 1
        # Reflect under the amplifier's true address: the defense's
        # back-propagated signature points here, not at the bot.
        size = pkt.size
        pool = self.sim.packet_pool
        for _ in range(self.gain):
            if pool is not None:
                out = pool.acquire(
                    self.host.addr,
                    victim,
                    size,
                    true_src=self.host.addr,
                    flow=("attack", self.host.addr),
                    created_at=self.sim.now,
                )
            else:
                out = Packet(
                    self.host.addr,
                    victim,
                    size,
                    true_src=self.host.addr,
                    flow=("attack", self.host.addr),
                    created_at=self.sim.now,
                )
            self.packets_reflected += 1
            self.host.originate(out)
