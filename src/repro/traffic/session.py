"""Stateful client sessions that migrate across server roaming.

Section 4: "When server switching occurs in the middle of a connection,
the connection is migrated to another active server where it is
resumed ... each active server periodically checkpoints per-connection
state of current connections and sends the checkpoints to the
corresponding clients.  Clients send the checkpoints to the new servers
to resume their connections."

:class:`SessionServerApp` runs on every replica: it acks session data,
mints integrity-protected checkpoints (shared pool MAC key), and
resumes connections presented with a valid checkpoint.
:class:`MigratingClientApp` keeps one long-lived connection going,
re-attaching to a fresh active server at each epoch boundary with the
latest checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..honeypots.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    ConnectionState,
)
from ..honeypots.subscription import ClientSubscription, SubscriptionExpired
from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet

__all__ = ["SessionServerApp", "MigratingClientApp", "SessionData", "CheckpointMsg", "ResumeMsg"]


@dataclass(frozen=True)
class SessionData:
    """Payload of a session data packet."""

    conn_id: int
    seq: int


@dataclass(frozen=True)
class CheckpointMsg:
    """Server -> client: the latest connection checkpoint."""

    checkpoint: Checkpoint
    msg_type: str = field(default="session_ckpt", init=False)


@dataclass(frozen=True)
class ResumeMsg:
    """Client -> new server: resume this connection from a checkpoint."""

    checkpoint: Checkpoint
    msg_type: str = field(default="session_resume", init=False)


class SessionServerApp:
    """Per-replica session handling: ack, checkpoint, resume."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        manager: CheckpointManager,
        checkpoint_every: int = 10,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.sim = sim
        self.host = host
        self.manager = manager
        self.checkpoint_every = checkpoint_every
        self.connections: Dict[int, ConnectionState] = {}
        self.resumed = 0
        self.resume_rejected = 0
        host.on_deliver(self._on_data)
        host.control_handlers["session_resume"] = self._on_resume

    # ------------------------------------------------------------------
    def _on_data(self, pkt: Packet) -> None:
        if not isinstance(pkt.payload, SessionData):
            return
        data: SessionData = pkt.payload
        conn = self.connections.get(data.conn_id)
        if conn is None:
            # New connection (or data arriving before the resume): open
            # fresh state for this client.
            conn = ConnectionState(data.conn_id, pkt.src)
            self.connections[data.conn_id] = conn
        conn.bytes_acked += pkt.size
        conn.app_state["last_seq"] = data.seq
        if data.seq % self.checkpoint_every == 0:
            ckpt = self.manager.checkpoint(conn, self.sim.now)
            self.host.send_control(conn.client_addr, CheckpointMsg(ckpt))

    def _on_resume(self, pkt: Packet, in_channel) -> None:
        msg: ResumeMsg = pkt.payload
        try:
            conn = self.manager.resume(msg.checkpoint)
        except CheckpointError:
            self.resume_rejected += 1
            return
        self.connections[conn.conn_id] = conn
        self.resumed += 1

    def bytes_acked(self, conn_id: int) -> int:
        conn = self.connections.get(conn_id)
        return conn.bytes_acked if conn is not None else 0


class MigratingClientApp:
    """A client with one long-lived connection across server roaming."""

    _next_conn_id = 1

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        subscription: ClientSubscription,
        server_addrs: Sequence[int],
        rate_bps: float,
        rng: np.random.Generator,
        packet_size: int = 1000,
    ) -> None:
        self.sim = sim
        self.host = host
        self.subscription = subscription
        self.server_addrs = list(server_addrs)
        self.rng = rng
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.conn_id = MigratingClientApp._next_conn_id
        MigratingClientApp._next_conn_id += 1
        self.seq = 0
        self.current_server: Optional[int] = None
        self.latest_checkpoint: Optional[Checkpoint] = None
        self.migrations = 0
        self._running = False
        host.control_handlers["session_ckpt"] = self._on_checkpoint

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else max(at, self.sim.now)
        self.sim.schedule_at(when, self._begin)

    def stop(self) -> None:
        self._running = False

    def _begin(self) -> None:
        if not self._running:
            return
        self._attach()
        interval = self.packet_size * 8.0 / self.rate_bps
        self.sim.every(interval, self._send_data)
        schedule = self.subscription.service.schedule
        _, end = schedule.epoch_bounds(schedule.epoch_index(self.sim.now))
        self.sim.every(schedule.epoch_len, self._epoch_switch, start=end)

    # ------------------------------------------------------------------
    def _pick_server(self) -> int:
        try:
            idx = self.subscription.pick_server(self.sim.now, self.rng)
        except SubscriptionExpired:
            self.subscription.service.renew(self.subscription, self.sim.now)
            idx = self.subscription.pick_server(self.sim.now, self.rng)
        return self.server_addrs[idx]

    def _attach(self) -> None:
        self.current_server = self._pick_server()

    def _epoch_switch(self) -> None:
        if not self._running:
            return
        new_server = self._pick_server()
        if new_server == self.current_server:
            return
        self.current_server = new_server
        self.migrations += 1
        # Present the newest checkpoint to the new server so the
        # connection resumes where it left off.
        if self.latest_checkpoint is not None:
            self.host.send_control(new_server, ResumeMsg(self.latest_checkpoint))

    def _send_data(self) -> None:
        if not self._running or self.current_server is None:
            return
        self.seq += 1
        pkt = Packet(
            self.host.addr,
            self.current_server,
            self.packet_size,
            flow=("client", self.host.addr),
            payload=SessionData(self.conn_id, self.seq),
            created_at=self.sim.now,
        )
        self.host.originate(pkt)

    def _on_checkpoint(self, pkt: Packet, in_channel) -> None:
        msg: CheckpointMsg = pkt.payload
        if (
            self.latest_checkpoint is None
            or msg.checkpoint.minted_at >= self.latest_checkpoint.minted_at
        ):
            self.latest_checkpoint = msg.checkpoint
