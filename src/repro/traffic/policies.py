"""Pluggable adversary policies (the ``AttackerPolicy`` interface).

The paper evaluates continuous, on-off, and follower attackers
(Sections 7.3, 8.3); modern evaluations of this defense class add
adaptive adversaries and reflective amplification (SoK on amplification
honeypots; BGPeek-a-Boo's aware-vs-unaware attacker split).  This
module turns the hard-coded zombie zoo into strategy objects: a policy
decides *when* a bot emits (churn, on-off, backoff), *where* it aims
(fixed target, probing re-targeting, amplifier bounce), and *how* it
spoofs — while the scenario stays a single policy-agnostic loop.

Determinism contract:

* Policies draw exclusively from the two :class:`~repro.sim.rng.RngRegistry`
  streams handed to them in :class:`BotEnv` (``rng`` for the legacy
  per-bot draws, ``policy_rng`` for policy-level decisions), so
  ``reprolint`` stays clean and same-seed runs are byte-identical.
* :class:`ContinuousPolicy` *is* the seed attacker: it constructs a
  plain :class:`~repro.traffic.attacker.AttackHost` with the exact same
  draw order (target pick, spoofer, on-off phase), which the
  legacy-equivalence suite pins byte-for-byte against pre-refactor
  journal fixtures.
* Adaptive decisions are journaled as ``attack_policy`` events (never
  for the legacy continuous/on-off path) so a replayed journal shows
  why a bot went dark or re-targeted.

Adaptive policies read the defense through :class:`DefenseProbes` —
side-effect-free oracles (is this server a honeypot right now? is my
subtree captured?) that model an attacker observing response behavior,
exactly the knowledge the paper grants its follower attacker.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import numpy as np

from ..sim.engine import Event, Simulator, Timer
from ..sim.node import Host
from .attacker import AttackHost, FollowerAttackHost, make_spoofer
from .sources import CBRSource

__all__ = [
    "AttackerPolicy",
    "AwareAttackHost",
    "BotEnv",
    "ChurnAttackHost",
    "ChurnPolicy",
    "ContinuousPolicy",
    "DefenseProbes",
    "FollowerPolicy",
    "HoneypotAwarePolicy",
    "NULL_PROBES",
    "POLICY_NAMES",
    "ProbingAttackHost",
    "ProbingPolicy",
    "ReflectionAttackHost",
    "ReflectionPolicy",
    "make_policy",
    "resolve_policy",
]


def _never_honeypot(server_addr: int) -> bool:  # noqa: ARG001
    return False


def _never_captured(host_addr: int) -> bool:  # noqa: ARG001
    return False


def _no_captures() -> int:
    return 0


@dataclass(frozen=True)
class DefenseProbes:
    """Read-only oracles adaptive attackers may consult.

    These model attacker-side *observations* (a honeypot drops service
    responses; a captured subtree stops carrying traffic), packaged as
    callables so the traffic layer never imports the defense layer.
    All three must be side-effect free: bots poll them from timers and
    the journal-identity guarantees rest on probes never perturbing
    defense state.
    """

    is_server_honeypot: Callable[[int], bool] = _never_honeypot
    subtree_captured: Callable[[int], bool] = _never_captured
    captures_total: Callable[[], int] = _no_captures


#: Probes for scenarios without an observable defense ("none"/"pushback").
NULL_PROBES = DefenseProbes()


@dataclass
class BotEnv:
    """Everything a policy needs to spawn one bot on one leaf host.

    ``rng`` is the legacy shared attacker stream (target pick, spoofed
    sources, on-off phase, jitter) — continuous/on-off bots must draw
    from it in the seed order.  ``policy_rng`` is a *separate* stream
    for policy-level decisions (churn gaps, re-target picks, amplifier
    choice) so adaptive draws never shift the legacy sequence.
    """

    sim: Simulator
    host: Host
    servers: Tuple[int, ...]
    rate_bps: float
    packet_size: int
    jitter: float
    rng: np.random.Generator
    policy_rng: np.random.Generator
    probes: DefenseProbes = NULL_PROBES
    amplifiers: Tuple[int, ...] = ()
    journal: Optional[Any] = None

    def note(self, action: str, **attrs: Any) -> None:
        """Journal one ``attack_policy`` decision (no-op untelemetered)."""
        if self.journal is not None:
            self.journal.record(
                "attack_policy", host=int(self.host.addr), action=action, **attrs
            )


class AttackerPolicy(ABC):
    """A strategy that turns a leaf host into an attacking bot.

    ``spawn`` returns a *bot*: any object with ``start(at=None)``,
    ``stop()``, and a ``packets_sent`` property — the same duck type
    the scenario has always driven.
    """

    name: str = "abstract"

    @abstractmethod
    def spawn(self, env: BotEnv) -> Any:
        """Build (but do not start) one bot for ``env.host``."""


# ----------------------------------------------------------------------
# Legacy policies: continuous / on-off / follower, refactored onto the
# interface without changing a single RNG draw.
# ----------------------------------------------------------------------
class ContinuousPolicy(AttackerPolicy):
    """The seed attacker: fixed random target, CBR (or on-off) spoofing.

    Byte-identity is load-bearing here: this spawns a plain
    :class:`AttackHost` with the seed argument order, so refactored
    scenarios replay pre-refactor journals exactly.
    """

    name = "continuous"

    def __init__(
        self, t_on: Optional[float] = None, t_off: Optional[float] = None
    ) -> None:
        self.t_on = t_on
        self.t_off = t_off

    def spawn(self, env: BotEnv) -> AttackHost:
        return AttackHost(
            env.sim,
            env.host,
            env.servers,
            env.rate_bps,
            env.rng,
            env.packet_size,
            t_on=self.t_on,
            t_off=self.t_off,
            jitter=env.jitter,
        )


class FollowerPolicy(AttackerPolicy):
    """The paper's follower (Section 7.3) behind the policy interface.

    Target pick uses the same ``env.rng`` draw as :class:`AttackHost`;
    the honeypot oracle comes from :class:`DefenseProbes`.
    """

    name = "follower"

    def __init__(self, d_follow: float = 1.0, poll_interval: float = 0.1) -> None:
        self.d_follow = d_follow
        self.poll_interval = poll_interval

    def spawn(self, env: BotEnv) -> FollowerAttackHost:
        target = int(env.servers[int(env.rng.integers(len(env.servers)))])
        probe = env.probes.is_server_honeypot
        return FollowerAttackHost(
            env.sim,
            env.host,
            target,
            env.rate_bps,
            self.d_follow,
            lambda: probe(target),
            poll_interval=self.poll_interval,
            packet_size=env.packet_size,
            rng=env.rng,
            jitter=env.jitter,
        )


# ----------------------------------------------------------------------
# Adaptive bots
# ----------------------------------------------------------------------
class _AdaptiveBot:
    """Shared lifecycle: deferred begin, cancellable timers, clean stop."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._running = False
        self._start_event: Optional[Event] = None
        self._timer: Optional[Timer] = None

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else at
        self._start_event = self.sim.schedule_at(max(when, self.sim.now), self._enter)

    def _enter(self) -> None:
        # Drop the fired handle first: the engine may recycle it.
        self._start_event = None
        if not self._running:
            return
        self._begin()

    def stop(self) -> None:
        self._running = False
        if self._start_event is not None:
            self._start_event.cancel()
            self._start_event = None
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._halt()

    # Subclasses arm their CBR/timers here and tear them down in _halt.
    def _begin(self) -> None:
        raise NotImplementedError

    def _halt(self) -> None:
        raise NotImplementedError


class AwareAttackHost(_AdaptiveBot):
    """Honeypot-aware avoidance: backs off on captures, goes dark when
    its own subtree is hit.

    The bot polls :class:`DefenseProbes`: any *new* capture anywhere
    triggers a temporary backoff of ``backoff`` seconds (the botnet
    observed a peer disappearing); a capture in the bot's own subtree
    (its access router) makes it go permanently dark.  Once dark it
    never emits again — the monotonicity property the test suite pins.
    """

    def __init__(
        self, env: BotEnv, backoff: float = 8.0, poll_interval: float = 0.5
    ) -> None:
        super().__init__(env.sim)
        self.env = env
        self.backoff = backoff
        self.poll_interval = poll_interval
        self.target = int(env.servers[int(env.rng.integers(len(env.servers)))])
        self.cbr = CBRSource(
            env.sim,
            env.host,
            self.target,
            env.rate_bps,
            env.packet_size,
            flow=("attack", env.host.addr),
            src_fn=make_spoofer(env.rng),
            jitter=env.jitter,
            rng=env.rng,
        )
        self.dark = False
        self._captures_seen = 0
        self._resume_at = 0.0

    def _begin(self) -> None:
        if self.dark:
            return
        self.cbr.start()
        self._timer = self.sim.every(self.poll_interval, self._poll)

    def _halt(self) -> None:
        self.cbr.stop()

    def _poll(self) -> None:
        if not self._running or self.dark:
            return
        env = self.env
        if env.probes.subtree_captured(env.host.addr):
            self.dark = True
            self.cbr.stop()
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            env.note("go_dark", captures=int(env.probes.captures_total()))
            return
        total = int(env.probes.captures_total())
        if total > self._captures_seen:
            self._captures_seen = total
            self._resume_at = self.sim.now + self.backoff
            if self.cbr.running:
                self.cbr.stop()
                env.note("backoff", captures=total, until=self._resume_at)
        elif not self.cbr.running and self.sim.now >= self._resume_at:
            self.cbr.start()
            env.note("resume", captures=total)

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent


class ProbingAttackHost(_AdaptiveBot):
    """Schedule-probing: re-targets away from servers observed to be
    honeypots (aware enumeration, vs the follower's single target).

    Every ``probe_interval`` the bot checks its current target; if the
    target looks like a honeypot it re-aims uniformly (``policy_rng``)
    among the currently-active servers, and pauses entirely when every
    server is a honeypot.
    """

    def __init__(self, env: BotEnv, probe_interval: float = 2.0) -> None:
        super().__init__(env.sim)
        self.env = env
        self.probe_interval = probe_interval
        self.target = int(env.servers[int(env.rng.integers(len(env.servers)))])
        self.retargets = 0
        self.cbr = CBRSource(
            env.sim,
            env.host,
            self._current_target,
            env.rate_bps,
            env.packet_size,
            flow=("attack", env.host.addr),
            src_fn=make_spoofer(env.rng),
            jitter=env.jitter,
            rng=env.rng,
        )

    def _current_target(self) -> int:
        return self.target

    def _begin(self) -> None:
        self.cbr.start()
        self._timer = self.sim.every(self.probe_interval, self._probe)

    def _halt(self) -> None:
        self.cbr.stop()

    def _probe(self) -> None:
        if not self._running:
            return
        env = self.env
        if env.probes.is_server_honeypot(self.target):
            active = [
                s for s in env.servers if not env.probes.is_server_honeypot(s)
            ]
            if active:
                old = self.target
                self.target = int(active[int(env.policy_rng.integers(len(active)))])
                self.retargets += 1
                env.note("retarget", previous=old, target=self.target)
                if not self.cbr.running:
                    self.cbr.start()
            elif self.cbr.running:
                # Every server looks like a trap: hold fire this round.
                self.cbr.stop()
                env.note("hold")
        elif not self.cbr.running:
            self.cbr.start()

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent


class ChurnAttackHost(_AdaptiveBot):
    """Botnet churn: the bot joins and leaves the attack mid-run.

    Online/offline dwell times are exponential draws (means
    ``churn_on``/``churn_off``) from ``policy_rng``.  Joins and leaves
    strictly alternate and the underlying CBR never double-starts —
    the state-machine invariants the property suite exercises.
    """

    def __init__(
        self, env: BotEnv, churn_on: float = 6.0, churn_off: float = 3.0
    ) -> None:
        super().__init__(env.sim)
        self.env = env
        self.churn_on = churn_on
        self.churn_off = churn_off
        target = int(env.servers[int(env.rng.integers(len(env.servers)))])
        self.cbr = CBRSource(
            env.sim,
            env.host,
            target,
            env.rate_bps,
            env.packet_size,
            flow=("attack", env.host.addr),
            src_fn=make_spoofer(env.rng),
            jitter=env.jitter,
            rng=env.rng,
        )
        self.joins = 0
        self.leaves = 0
        self._flip_event: Optional[Event] = None

    @property
    def online(self) -> bool:
        return self.joins > self.leaves

    def _begin(self) -> None:
        self._join()

    def _halt(self) -> None:
        if self._flip_event is not None:
            self._flip_event.cancel()
            self._flip_event = None
        self.cbr.stop()

    def _join(self) -> None:
        self._flip_event = None
        if not self._running or self.online:
            return
        self.joins += 1
        self.cbr.start()
        self.env.note("join", n=self.joins)
        dwell = float(self.env.policy_rng.exponential(self.churn_on))
        self._flip_event = self.sim.schedule(dwell, self._leave)

    def _leave(self) -> None:
        self._flip_event = None
        if not self._running or not self.online:
            return
        self.leaves += 1
        self.cbr.stop()
        self.env.note("leave", n=self.leaves)
        dwell = float(self.env.policy_rng.exponential(self.churn_off))
        self._flip_event = self.sim.schedule(dwell, self._join)

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent


class ReflectionAttackHost:
    """Reflection/amplification: triggers bounced off an amplifier.

    The bot sends *trigger* packets (flow ``("trigger", addr)``) to one
    amplifier leaf, spoofing the victim server's address as the source;
    the amplifier (:class:`~repro.traffic.amplifier.AmplifierApp`)
    reflects ``amplification`` response packets per trigger toward the
    victim under its *own* true address.  The back-propagated signature
    therefore points at the reflector, not this bot — the defense needs
    the amplifier-side trigger log for stage two of the traceback.

    The trigger rate is ``rate_bps / amplification`` so the victim-side
    flood matches the bot's nominal attack rate.
    """

    def __init__(self, env: BotEnv, amplification: float = 5.0) -> None:
        if not env.amplifiers:
            raise ValueError("reflection policy needs amplifier nodes (n_amplifiers)")
        if amplification < 1.0:
            raise ValueError(f"amplification must be >= 1 (got {amplification})")
        self.env = env
        self.victim = int(env.servers[int(env.rng.integers(len(env.servers)))])
        self.amplifier = int(
            env.amplifiers[int(env.policy_rng.integers(len(env.amplifiers)))]
        )
        victim = self.victim

        def _spoof_victim() -> int:
            return victim

        self.cbr = CBRSource(
            env.sim,
            env.host,
            self.amplifier,
            env.rate_bps / amplification,
            env.packet_size,
            flow=("trigger", env.host.addr),
            src_fn=_spoof_victim,
            jitter=env.jitter,
            rng=env.rng,
        )
        env.note("reflect_via", amplifier=self.amplifier, victim=self.victim)

    def start(self, at: Optional[float] = None) -> None:
        self.cbr.start(at)

    def stop(self) -> None:
        self.cbr.stop()

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent


# ----------------------------------------------------------------------
# Policy classes over the adaptive bots
# ----------------------------------------------------------------------
class HoneypotAwarePolicy(AttackerPolicy):
    name = "aware"

    def __init__(self, backoff: float = 8.0, poll_interval: float = 0.5) -> None:
        self.backoff = backoff
        self.poll_interval = poll_interval

    def spawn(self, env: BotEnv) -> AwareAttackHost:
        return AwareAttackHost(env, self.backoff, self.poll_interval)


class ProbingPolicy(AttackerPolicy):
    name = "probing"

    def __init__(self, probe_interval: float = 2.0) -> None:
        self.probe_interval = probe_interval

    def spawn(self, env: BotEnv) -> ProbingAttackHost:
        return ProbingAttackHost(env, self.probe_interval)


class ChurnPolicy(AttackerPolicy):
    name = "churn"

    def __init__(self, churn_on: float = 6.0, churn_off: float = 3.0) -> None:
        self.churn_on = churn_on
        self.churn_off = churn_off

    def spawn(self, env: BotEnv) -> ChurnAttackHost:
        return ChurnAttackHost(env, self.churn_on, self.churn_off)


class ReflectionPolicy(AttackerPolicy):
    name = "reflection"

    def __init__(self, amplification: float = 5.0) -> None:
        self.amplification = amplification

    def spawn(self, env: BotEnv) -> ReflectionAttackHost:
        return ReflectionAttackHost(env, self.amplification)


POLICY_NAMES: Tuple[str, ...] = (
    "continuous",
    "onoff",
    "follower",
    "aware",
    "probing",
    "churn",
    "reflection",
)


def make_policy(
    name: str,
    *,
    t_on: Optional[float] = None,
    t_off: Optional[float] = None,
    d_follow: float = 1.0,
    aware_backoff: float = 8.0,
    probe_interval: float = 2.0,
    churn_on: float = 6.0,
    churn_off: float = 3.0,
    amplification: float = 5.0,
) -> AttackerPolicy:
    """Build a policy by name with the scenario's knobs.

    ``"continuous"`` passes ``t_on``/``t_off`` through (both set =>
    the seed on-off attacker); ``"onoff"`` requires bursts and defaults
    them to 5 s / 5 s when unset.
    """
    if name == "continuous":
        return ContinuousPolicy(t_on=t_on, t_off=t_off)
    if name == "onoff":
        return ContinuousPolicy(
            t_on=5.0 if t_on is None else t_on,
            t_off=5.0 if t_off is None else t_off,
        )
    if name == "follower":
        return FollowerPolicy(d_follow=d_follow)
    if name == "aware":
        return HoneypotAwarePolicy(backoff=aware_backoff)
    if name == "probing":
        return ProbingPolicy(probe_interval=probe_interval)
    if name == "churn":
        return ChurnPolicy(churn_on=churn_on, churn_off=churn_off)
    if name == "reflection":
        return ReflectionPolicy(amplification=amplification)
    raise ValueError(
        f"unknown attacker policy {name!r}; choose from {', '.join(POLICY_NAMES)}"
    )


def resolve_policy(name: Optional[str] = None) -> str:
    """CLI/env policy selection: explicit > ``$REPRO_POLICY`` > continuous."""
    if name:
        return name
    return os.environ.get("REPRO_POLICY", "") or "continuous"
