"""Traffic generators: CBR clients, spoofing zombies, adversary policies."""

from .amplifier import AmplifierApp
from .attacker import (
    SPOOF_BASE,
    AttackHost,
    FollowerAttackHost,
    make_spoofer,
)
from .client import RoamingClientApp, StaticClientApp
from .policies import (
    NULL_PROBES,
    POLICY_NAMES,
    AttackerPolicy,
    AwareAttackHost,
    BotEnv,
    ChurnAttackHost,
    ChurnPolicy,
    ContinuousPolicy,
    DefenseProbes,
    FollowerPolicy,
    HoneypotAwarePolicy,
    ProbingAttackHost,
    ProbingPolicy,
    ReflectionAttackHost,
    ReflectionPolicy,
    make_policy,
    resolve_policy,
)
from .session import (
    CheckpointMsg,
    MigratingClientApp,
    ResumeMsg,
    SessionData,
    SessionServerApp,
)
from .sources import CBRSource, OnOffSource

__all__ = [
    "AmplifierApp",
    "AttackHost",
    "AttackerPolicy",
    "AwareAttackHost",
    "BotEnv",
    "CBRSource",
    "CheckpointMsg",
    "ChurnAttackHost",
    "ChurnPolicy",
    "ContinuousPolicy",
    "DefenseProbes",
    "FollowerAttackHost",
    "FollowerPolicy",
    "HoneypotAwarePolicy",
    "MigratingClientApp",
    "NULL_PROBES",
    "OnOffSource",
    "POLICY_NAMES",
    "ProbingAttackHost",
    "ProbingPolicy",
    "ReflectionAttackHost",
    "ReflectionPolicy",
    "ResumeMsg",
    "RoamingClientApp",
    "SPOOF_BASE",
    "SessionData",
    "SessionServerApp",
    "StaticClientApp",
    "make_policy",
    "make_spoofer",
    "resolve_policy",
]
