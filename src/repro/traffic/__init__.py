"""Traffic generators: CBR clients, spoofing zombies, on-off attacks."""

from .attacker import (
    SPOOF_BASE,
    AttackHost,
    FollowerAttackHost,
    make_spoofer,
)
from .client import RoamingClientApp, StaticClientApp
from .session import (
    CheckpointMsg,
    MigratingClientApp,
    ResumeMsg,
    SessionData,
    SessionServerApp,
)
from .sources import CBRSource, OnOffSource

__all__ = [
    "AttackHost",
    "CBRSource",
    "CheckpointMsg",
    "FollowerAttackHost",
    "MigratingClientApp",
    "OnOffSource",
    "ResumeMsg",
    "RoamingClientApp",
    "SPOOF_BASE",
    "SessionData",
    "SessionServerApp",
    "StaticClientApp",
    "make_spoofer",
]
