"""Legitimate clients under the roaming honeypots scheme.

"At the start of each periodic epoch, each legitimate client selects
one of the ... active servers uniformly at random and directs its
traffic into it" (Section 8.3).  Clients compute the active set from
their subscription key and loosely synchronized clock, so they never
(modulo the guard bands) send to a honeypot.

For the Pushback / no-defense baselines the paper distributes
legitimate traffic uniformly over all servers; :class:`StaticClientApp`
implements that.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..honeypots.subscription import ClientSubscription, SubscriptionExpired
from ..sim.engine import Simulator
from ..sim.node import Host
from .sources import CBRSource

__all__ = ["RoamingClientApp", "StaticClientApp"]


class RoamingClientApp:
    """A subscribed client that re-picks an active server each epoch."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        subscription: ClientSubscription,
        server_addrs: Sequence[int],
        rate_bps: float,
        rng: np.random.Generator,
        packet_size: int = 1000,
        jitter: float = 0.0,
    ) -> None:
        self.sim = sim
        self.subscription = subscription
        self.server_addrs = list(server_addrs)
        self.rng = rng
        self._current_dst = self.server_addrs[0]
        self.cbr = CBRSource(
            sim,
            host,
            lambda: self._current_dst,
            rate_bps,
            packet_size,
            flow=("client", host.addr),
            jitter=jitter,
            rng=rng,
        )
        self.epoch_switches = 0
        self.renewals = 0
        self._running = False

    # ------------------------------------------------------------------
    def _pick_server(self) -> None:
        try:
            idx = self.subscription.pick_server(self.sim.now, self.rng)
        except SubscriptionExpired:
            # Contact the subscription service for a fresh key, then retry.
            self.subscription.service.renew(self.subscription, self.sim.now)
            self.renewals += 1
            idx = self.subscription.pick_server(self.sim.now, self.rng)
        self._current_dst = self.server_addrs[idx]
        self.epoch_switches += 1

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else max(at, self.sim.now)
        self.sim.schedule_at(when, self._begin)

    def _begin(self) -> None:
        if not self._running:
            return
        self._pick_server()
        self.cbr.start()
        # Re-pick at each epoch boundary (client-local clock; the small
        # offset is covered by the server-side guard bands).
        schedule = self.subscription.service.schedule
        start, end = schedule.epoch_bounds(schedule.epoch_index(self.sim.now))
        first_boundary = end - self.subscription.clock_offset
        self.sim.every(
            schedule.epoch_len, self._pick_server, start=max(first_boundary, self.sim.now)
        )

    def stop(self) -> None:
        self._running = False
        self.cbr.stop()

    @property
    def current_server(self) -> int:
        return self._current_dst


class StaticClientApp:
    """Baseline client: a fixed, uniformly chosen server for the run."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server_addrs: Sequence[int],
        rate_bps: float,
        rng: np.random.Generator,
        packet_size: int = 1000,
        jitter: float = 0.0,
    ) -> None:
        dst = int(server_addrs[int(rng.integers(len(server_addrs)))])
        self.cbr = CBRSource(
            sim, host, dst, rate_bps, packet_size,
            flow=("client", host.addr), jitter=jitter, rng=rng,
        )
        self.current_server = dst

    def start(self, at: Optional[float] = None) -> None:
        self.cbr.start(at)

    def stop(self) -> None:
        self.cbr.stop()
