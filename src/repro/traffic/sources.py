"""Traffic sources: CBR and on-off generators.

Both legitimate clients and attackers in the paper send CBR (constant
bit rate) traffic toward the servers (Section 8.3).  Low-rate attackers
alternate on-bursts of ``t_on`` seconds at rate r with ``t_off``
seconds of silence (Section 7.3).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet, PacketKind

__all__ = ["CBRSource", "OnOffSource"]

# Supplies the destination for the next packet (roaming clients change it).
DstFn = Callable[[], int]
# Supplies the claimed (possibly spoofed) source address for the next packet.
SrcFn = Callable[[], int]


class CBRSource:
    """Constant-bit-rate packet source attached to a host.

    Parameters
    ----------
    rate_bps:
        Sending rate in bits/second; one ``packet_size``-byte packet is
        sent every ``packet_size * 8 / rate_bps`` seconds.
    dst:
        Destination address, or a zero-argument callable evaluated per
        packet (used by roaming clients that change servers per epoch).
    src_fn:
        Optional claimed-source generator (spoofing attackers); the
        packet's ``true_src`` is always the attached host.
    jitter:
        Relative jitter on the inter-packet interval (each gap is
        drawn uniformly from ``interval * (1 ± jitter)``).  Breaks the
        phase locking that perfectly periodic CBR flows exhibit at a
        saturated drop-tail queue (ns-2's CBR has the same knob); the
        long-run rate is unchanged.  Requires ``rng`` when non-zero.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: int | DstFn,
        rate_bps: float,
        packet_size: int = 1000,
        flow=None,
        src_fn: Optional[SrcFn] = None,
        kind: str = PacketKind.DATA,
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive (got {rate_bps})")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive (got {packet_size})")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1) (got {jitter})")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.host = host
        self._dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.flow = flow if flow is not None else ("cbr", host.addr)
        self.src_fn = src_fn
        self.kind = kind
        self.jitter = jitter
        self.rng = rng
        self.interval = packet_size * 8.0 / rate_bps
        self.packets_sent = 0
        self._running = False
        self._next_event = None

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin sending (immediately or at absolute time ``at``)."""
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else at
        self._next_event = self.sim.schedule_at(max(when, self.sim.now), self._tick)

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        dst = self._dst() if callable(self._dst) else self._dst
        src = self.host.addr if self.src_fn is None else self.src_fn()
        pkt = Packet(
            src,
            dst,
            self.packet_size,
            true_src=self.host.addr,
            flow=self.flow,
            kind=self.kind,
            created_at=self.sim.now,
        )
        self.host.originate(pkt)
        self.packets_sent += 1
        gap = self.interval
        if self.jitter > 0.0:
            gap *= 1.0 + self.jitter * (2.0 * float(self.rng.random()) - 1.0)
        self._next_event = self.sim.schedule(gap, self._tick)


class OnOffSource:
    """On-off modulation of a CBR source.

    Cycles: send at the CBR rate for ``t_on`` seconds, stay silent for
    ``t_off`` seconds, repeat.  ``phase`` offsets the first burst.
    """

    def __init__(
        self,
        sim: Simulator,
        cbr: CBRSource,
        t_on: float,
        t_off: float,
        phase: float = 0.0,
    ) -> None:
        if t_on <= 0:
            raise ValueError(f"t_on must be positive (got {t_on})")
        if t_off < 0:
            raise ValueError(f"t_off must be >= 0 (got {t_off})")
        self.sim = sim
        self.cbr = cbr
        self.t_on = t_on
        self.t_off = t_off
        self.phase = phase
        self.bursts = 0
        self._running = False

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = (self.sim.now if at is None else at) + self.phase
        self.sim.schedule_at(max(when, self.sim.now), self._burst_start)

    def stop(self) -> None:
        self._running = False
        self.cbr.stop()

    @property
    def running(self) -> bool:
        return self._running

    def _burst_start(self) -> None:
        if not self._running:
            return
        self.bursts += 1
        self.cbr.start()
        self.sim.schedule(self.t_on, self._burst_end)

    def _burst_end(self) -> None:
        self.cbr.stop()
        if self._running:
            self.sim.schedule(self.t_off, self._burst_start)
