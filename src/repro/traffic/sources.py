"""Traffic sources: CBR and on-off generators.

Both legitimate clients and attackers in the paper send CBR (constant
bit rate) traffic toward the servers (Section 8.3).  Low-rate attackers
alternate on-bursts of ``t_on`` seconds at rate r with ``t_off``
seconds of silence (Section 7.3).

Fast path: with ``batch=K`` (or ``REPRO_CBR_BATCH=K``) a CBR source
precomputes its next K departure times — jitter draws come from the
source's existing RNG stream, departure times by the same sequential
float accumulation as the event-per-packet path, so each source's
packet schedule is bit-identical — and registers them in one
``schedule_many`` call plus a single batch-refill event.  The default
stays K=1 because scenarios share one client RNG across many sources:
batching reorders the *interleaving* of draws between sources, which
changes the global random sequence even though each gap distribution is
unchanged.  Enable it for single-source or per-source-RNG workloads.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from ..sim.engine import Event, Simulator
from ..sim.node import Host
from ..sim.packet import Packet, PacketKind

__all__ = ["CBRSource", "OnOffSource"]

# Supplies the destination for the next packet (roaming clients change it).
DstFn = Callable[[], int]
# Supplies the claimed (possibly spoofed) source address for the next packet.
SrcFn = Callable[[], int]


class CBRSource:
    """Constant-bit-rate packet source attached to a host.

    Parameters
    ----------
    rate_bps:
        Sending rate in bits/second; one ``packet_size``-byte packet is
        sent every ``packet_size * 8 / rate_bps`` seconds.
    dst:
        Destination address, or a zero-argument callable evaluated per
        packet (used by roaming clients that change servers per epoch).
    src_fn:
        Optional claimed-source generator (spoofing attackers); the
        packet's ``true_src`` is always the attached host.
    jitter:
        Relative jitter on the inter-packet interval (each gap is
        drawn uniformly from ``interval * (1 ± jitter)``).  Breaks the
        phase locking that perfectly periodic CBR flows exhibit at a
        saturated drop-tail queue (ns-2's CBR has the same knob); the
        long-run rate is unchanged.  Requires ``rng`` when non-zero.
    batch:
        Departure times precomputed per scheduling round (default 1 =
        one event per packet; see module docstring).  ``None`` reads
        ``REPRO_CBR_BATCH``.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: int | DstFn,
        rate_bps: float,
        packet_size: int = 1000,
        flow=None,
        src_fn: Optional[SrcFn] = None,
        kind: str = PacketKind.DATA,
        jitter: float = 0.0,
        rng=None,
        batch: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive (got {rate_bps})")
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive (got {packet_size})")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1) (got {jitter})")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires an rng")
        if batch is None:
            batch = int(os.environ.get("REPRO_CBR_BATCH", "1") or "1")
        if batch < 1:
            raise ValueError(f"batch must be >= 1 (got {batch})")
        self.sim = sim
        self.host = host
        self._dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.flow = flow if flow is not None else ("cbr", host.addr)
        self.src_fn = src_fn
        self.kind = kind
        self.jitter = jitter
        self.rng = rng
        self.batch = batch
        self.interval = packet_size * 8.0 / rate_bps
        self.packets_sent = 0
        self._running = False
        self._next_event = None
        # Batched path: events for precomputed departures, with a
        # cursor separating fired events (which the engine may have
        # recycled — never touch those handles again) from pending ones
        # that stop() must cancel.
        self._batch_events: List[Optional[Event]] = []
        self._batch_pos = 0

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin sending (immediately or at absolute time ``at``)."""
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else at
        entry = self._refill if self.batch > 1 else self._tick
        self._next_event = self.sim.schedule_at(max(when, self.sim.now), entry)

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        # Cancel only the not-yet-fired tail of the batch; fired
        # handles may already be recycled by the engine.
        events = self._batch_events
        for i in range(self._batch_pos, len(events)):
            ev = events[i]
            if ev is not None:
                ev.cancel()
        events.clear()
        self._batch_pos = 0

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def _send_packet(self) -> None:
        """Build (or recycle) and originate one packet at ``sim.now``."""
        dst = self._dst() if callable(self._dst) else self._dst
        src = self.host.addr if self.src_fn is None else self.src_fn()
        pool = self.sim.packet_pool
        if pool is not None:
            pkt = pool.acquire(
                src,
                dst,
                self.packet_size,
                true_src=self.host.addr,
                flow=self.flow,
                kind=self.kind,
                created_at=self.sim.now,
            )
        else:
            pkt = Packet(
                src,
                dst,
                self.packet_size,
                true_src=self.host.addr,
                flow=self.flow,
                kind=self.kind,
                created_at=self.sim.now,
            )
        self.host.originate(pkt)
        self.packets_sent += 1

    def _next_gap(self) -> float:
        gap = self.interval
        if self.jitter > 0.0:
            gap *= 1.0 + self.jitter * (2.0 * float(self.rng.random()) - 1.0)
        return gap

    def _tick(self) -> None:
        if not self._running:
            return
        self._send_packet()
        self._next_event = self.sim.schedule(self._next_gap(), self._tick)

    # ------------------------------------------------------------------
    # Batched path (batch > 1)
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Send the packet due now, then register the next K departures.

        Gaps are drawn from the same RNG stream in the same order as
        the event-per-packet path, and each departure time is the
        previous one plus its gap (sequential float accumulation) — so
        this source's schedule is bit-identical to ``batch=1``.
        """
        if not self._running:
            return
        self._next_event = None
        self._send_packet()
        t = self.sim.now
        times: List[float] = []
        for _ in range(self.batch):
            t = t + self._next_gap()
            times.append(t)
        events = self.sim.schedule_many(times[:-1], self._send_one)
        events.append(self.sim.schedule_at(times[-1], self._refill))
        self._batch_events = events
        self._batch_pos = 0

    def _send_one(self) -> None:
        # Batch events fire in chronological order; advance the cursor
        # past this (about-to-be-recycled) handle first.
        self._batch_events[self._batch_pos] = None
        self._batch_pos += 1
        if not self._running:
            return
        self._send_packet()


class OnOffSource:
    """On-off modulation of a CBR source.

    Cycles: send at the CBR rate for ``t_on`` seconds, stay silent for
    ``t_off`` seconds, repeat.  ``phase`` offsets the first burst.
    """

    def __init__(
        self,
        sim: Simulator,
        cbr: CBRSource,
        t_on: float,
        t_off: float,
        phase: float = 0.0,
    ) -> None:
        if t_on <= 0:
            raise ValueError(f"t_on must be positive (got {t_on})")
        if t_off < 0:
            raise ValueError(f"t_off must be >= 0 (got {t_off})")
        self.sim = sim
        self.cbr = cbr
        self.t_on = t_on
        self.t_off = t_off
        self.phase = phase
        self.bursts = 0
        self._running = False

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = (self.sim.now if at is None else at) + self.phase
        self.sim.schedule_at(max(when, self.sim.now), self._burst_start)

    def stop(self) -> None:
        self._running = False
        self.cbr.stop()

    @property
    def running(self) -> bool:
        return self._running

    def _burst_start(self) -> None:
        if not self._running:
            return
        self.bursts += 1
        self.cbr.start()
        self.sim.schedule(self.t_on, self._burst_end)

    def _burst_end(self) -> None:
        self.cbr.stop()
        if self._running:
            self.sim.schedule(self.t_off, self._burst_start)
