"""Attack hosts: spoofing zombies.

The attack model (Section 3): attacks are launched from ``n_a`` zombie
hosts sending spoofed packets destined for the servers.  "Each attack
host picks a server among the five servers uniformly at random and
keeps on attacking it" (Section 8.3).

Spoofed source addresses are drawn from a reserved address range
disjoint from real node addresses, so a spoofed packet never matches a
legitimate client — mirroring randomly forged 32-bit sources.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sim.engine import Simulator
from ..sim.node import Host
from .sources import CBRSource, OnOffSource

__all__ = ["SPOOF_BASE", "make_spoofer", "AttackHost", "FollowerAttackHost"]

# Spoofed addresses live at and above this offset; no topology will
# ever allocate node ids this large.
SPOOF_BASE = 1_000_000_000
SPOOF_RANGE = 1_000_000


def make_spoofer(rng: np.random.Generator):
    """Return a claimed-source generator drawing random spoofed addresses."""

    def spoof() -> int:
        return SPOOF_BASE + int(rng.integers(SPOOF_RANGE))

    return spoof


class AttackHost:
    """A zombie: fixed random target server, CBR or on-off, spoofing.

    Parameters
    ----------
    servers:
        Addresses of the victim server pool; one is chosen uniformly
        at random and attacked for the whole run.
    rate_bps:
        Attack rate of this zombie.
    t_on, t_off:
        If both given, the zombie runs an on-off attack; otherwise it
        sends continuously.
    spoof:
        Whether to forge source addresses (the paper's attackers do).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        servers: Sequence[int],
        rate_bps: float,
        rng: np.random.Generator,
        packet_size: int = 1000,
        t_on: Optional[float] = None,
        t_off: Optional[float] = None,
        spoof: bool = True,
        jitter: float = 0.0,
    ) -> None:
        if not servers:
            raise ValueError("need at least one target server")
        self.host = host
        self.target = int(servers[int(rng.integers(len(servers)))])
        src_fn = make_spoofer(rng) if spoof else None
        self.cbr = CBRSource(
            sim,
            host,
            self.target,
            rate_bps,
            packet_size,
            flow=("attack", host.addr),
            src_fn=src_fn,
            jitter=jitter,
            rng=rng,
        )
        self._onoff: Optional[OnOffSource] = None
        if t_on is not None and t_off is not None:
            # De-synchronize bursts across zombies with a random phase.
            phase = float(rng.uniform(0.0, t_on + t_off))
            self._onoff = OnOffSource(sim, self.cbr, t_on, t_off, phase=phase)
        elif (t_on is None) != (t_off is None):
            raise ValueError("give both t_on and t_off or neither")

    def start(self, at: Optional[float] = None) -> None:
        (self._onoff or self.cbr).start(at)

    def stop(self) -> None:
        (self._onoff or self.cbr).stop()

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent


class FollowerAttackHost:
    """Follower attack (Section 7.3): reacts to honeypot epochs.

    A follower stops sending ``d_follow`` seconds after its target
    enters a honeypot epoch (it needs that long to *detect* the switch,
    e.g. by noticing the lack of responses) and resumes once the target
    is active again.  With d_follow > (1/r + τ), back-propagation still
    makes at least one hop of progress per honeypot epoch.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        target: int,
        rate_bps: float,
        d_follow: float,
        is_target_honeypot,  # callable () -> bool
        poll_interval: float = 0.1,
        packet_size: int = 1000,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.0,
    ) -> None:
        if d_follow < 0:
            raise ValueError("d_follow must be >= 0")
        self.sim = sim
        self.d_follow = d_follow
        self.is_target_honeypot = is_target_honeypot
        self.poll_interval = poll_interval
        src_fn = make_spoofer(rng) if rng is not None else None
        self.cbr = CBRSource(
            sim, host, target, rate_bps, packet_size,
            flow=("attack", host.addr), src_fn=src_fn,
            jitter=jitter, rng=rng,
        )
        self._running = False
        self._honeypot_seen_at: Optional[float] = None
        # Pending lifecycle handles: stop() must cancel both, otherwise
        # a stop() before _begin() fires leaves the stale start event
        # queued (it would re-arm a duplicate poll timer on restart) and
        # a stop() after _begin() leaves the poll timer running forever.
        self._start_event = None
        self._poll_timer = None

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        when = self.sim.now if at is None else at
        self._start_event = self.sim.schedule_at(max(when, self.sim.now), self._begin)

    def _begin(self) -> None:
        # Drop the fired handle first: the engine may recycle it.
        self._start_event = None
        if not self._running:
            return
        self.cbr.start()
        if self._poll_timer is None:
            self._poll_timer = self.sim.every(self.poll_interval, self._poll)

    def stop(self) -> None:
        self._running = False
        if self._start_event is not None:
            self._start_event.cancel()
            self._start_event = None
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None
        self.cbr.stop()

    @property
    def packets_sent(self) -> int:
        return self.cbr.packets_sent

    def _poll(self) -> None:
        if not self._running:
            return
        if self.is_target_honeypot():
            if self._honeypot_seen_at is None:
                self._honeypot_seen_at = self.sim.now
            # The follower reacts d_follow seconds after the switch.
            if self.cbr.running and self.sim.now - self._honeypot_seen_at >= self.d_follow:
                self.cbr.stop()
        else:
            self._honeypot_seen_at = None
            if not self.cbr.running:
                self.cbr.start()
