"""JSON checkpoint/resume for partially completed sweeps.

The checkpoint is a plain JSON artifact (same writer as every other
artifact in the repo, :func:`repro.obs.export.write_json`) mapping task
ids to their "ok" outcome dicts.  The pool records each completed task
as it lands and the file is replaced atomically (write-tmp + rename),
so a sweep killed at any instant leaves a loadable checkpoint holding
exactly the tasks that finished.

Resume semantics:

* only ``status == "ok"`` outcomes are checkpointed — quarantined
  tasks are re-attempted on the next run (their failure may have been
  environmental);
* a resumed task's outcome is bit-identical to a fresh run's because
  task values are JSON-ready dicts and Python's JSON float round-trip
  is exact;
* the checkpoint knows nothing about the task *list* — re-running with
  a different sweep simply finds no matching ids and runs everything.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Optional, Union

from ..obs.export import write_json
from .tasks import STATUS_OK, TaskOutcome

__all__ = ["SweepCheckpoint", "CHECKPOINT_SCHEMA"]

CHECKPOINT_SCHEMA = "repro.parallel/1"


class SweepCheckpoint:
    """Load-on-open, record-as-you-go sweep checkpoint."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._outcomes: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            schema = data.get("schema")
            if schema != CHECKPOINT_SCHEMA:
                raise ValueError(
                    f"{self.path}: not a sweep checkpoint "
                    f"(schema {schema!r}, expected {CHECKPOINT_SCHEMA!r})"
                )
            self._outcomes = dict(data.get("outcomes", {}))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._outcomes

    def task_ids(self) -> list:
        return sorted(self._outcomes)

    def get(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The stored outcome dict for ``task_id`` (None if not done)."""
        return self._outcomes.get(task_id)

    # ------------------------------------------------------------------
    def record(self, outcome: TaskOutcome) -> None:
        """Persist one completed task (no-op for non-"ok" outcomes)."""
        if outcome.status != STATUS_OK:
            return
        self._outcomes[outcome.task_id] = outcome.as_dict()
        self._flush()

    def discard(self, task_ids: Iterable[str]) -> None:
        """Forget selected tasks (used by resume tests and ``--rerun``)."""
        for task_id in task_ids:
            self._outcomes.pop(task_id, None)
        self._flush()

    def clear(self) -> None:
        self._outcomes = {}
        if os.path.exists(self.path):
            os.remove(self.path)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        tmp = self.path + ".tmp"
        write_json(tmp, {"schema": CHECKPOINT_SCHEMA, "outcomes": self._outcomes})
        os.replace(tmp, self.path)
