"""Merging per-worker telemetry artifacts into one consolidated run.

Workers cannot share a live :class:`~repro.obs.telemetry.Telemetry`
(its span clock is a closure over the worker's simulator), so each
instrumented task builds its own and ships the JSON-ready *artifact*
back.  This module folds those artifacts into a parent telemetry:

* metrics merge via :meth:`MetricsRegistry.merge` (counter adds,
  histogram bucket adds);
* spans are re-materialized with their ids offset past the parent's,
  preserving parent/child links — exactly what sequential serial runs
  sharing one recorder would have produced;
* journal events merge under the same id-offsetting scheme, so the
  consolidated flight recorder is byte-identical to a serial run's;
* engine profiles accumulate (sums; heap high-water max);
* leftover ``extra`` keys deep-merge with setdefault semantics,
  matching how serial runs populate ``telemetry.extra``.

Both helpers are order-sensitive by design: callers absorb in task
order (never completion order) so serial and parallel artifacts are
byte-identical modulo wall-time fields — :func:`strip_volatile`
removes those for comparisons.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..obs.journal import Journal, JournalEvent
from ..obs.registry import MetricsRegistry
from ..obs.spans import Span
from ..obs.telemetry import Telemetry

__all__ = [
    "absorb_artifact",
    "merge_artifacts",
    "merge_shard_journals",
    "split_journal_by_origin",
    "strip_volatile",
    "VOLATILE_KEYS",
]

# Wall-clock-derived fields: the only artifact entries allowed to
# differ between a serial and an N-worker run of the same sweep.
# "wall_s" is the per-dimension attribution wall time (the companion
# "events" counts are deterministic and must match serial vs pool).
VOLATILE_KEYS = frozenset(
    {"wall_time_s", "wall_time", "events_per_sec", "wall_per_sim_sec", "wall_s"}
)

_ARTIFACT_CORE = ("schema", "metrics", "spans", "journal", "engine")


def strip_volatile(obj: Any, keys: Iterable[str] = VOLATILE_KEYS) -> Any:
    """A deep copy of ``obj`` with all wall-time fields removed."""
    keyset = frozenset(keys)
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v, keyset)
            for k, v in obj.items()
            if k not in keyset
        }
    if isinstance(obj, (list, tuple)):
        return [strip_volatile(v, keyset) for v in obj]
    return obj


def _deep_setdefault(dst: Dict[str, Any], src: Dict[str, Any]) -> None:
    """Merge ``src`` into ``dst`` without overwriting existing scalars
    (the dict analogue of ``setdefault``, applied recursively)."""
    for key, value in src.items():
        if key in dst and isinstance(dst[key], dict) and isinstance(value, dict):
            _deep_setdefault(dst[key], value)
        else:
            dst.setdefault(key, value)


def absorb_artifact(telemetry: Telemetry, artifact: Dict[str, Any]) -> Telemetry:
    """Fold one worker's run artifact into ``telemetry`` in place."""
    metrics = artifact.get("metrics")
    if metrics:
        telemetry.registry.merge(MetricsRegistry.from_dict(metrics))

    offset = len(telemetry.spans.spans)
    for d in artifact.get("spans", ()):
        parent = d.get("parent_id")
        span = Span(
            d["span_id"] + offset,
            d["name"],
            d["start"],
            parent + offset if parent is not None else None,
            dict(d.get("attrs", {})),
        )
        span.end = d.get("end")
        telemetry.spans.spans.append(span)
        telemetry.spans._by_id[span.span_id] = span

    event_offset = len(telemetry.journal.events)
    for d in artifact.get("journal", ()):
        parent = d.get("parent")
        telemetry.journal.events.append(
            JournalEvent(
                int(d["id"]) + event_offset,
                d["name"],
                d["t"],
                parent + event_offset if parent is not None else None,
                dict(d.get("attrs", {})),
            )
        )

    engine = artifact.get("engine")
    if engine:
        prof = telemetry.profiler
        prof.runs += int(engine.get("runs", 0))
        prof.events += int(engine.get("events_processed", 0))
        prof.wall_time += float(engine.get("wall_time_s", 0.0))
        prof.sim_time += float(engine.get("sim_time_s", 0.0))
        prof.note_heap(int(engine.get("heap_hwm_events", 0)))
        dims = engine.get("dimensions")
        if dims:
            prof.merge_dimension_rows(dims)

    extras = {k: v for k, v in artifact.items() if k not in _ARTIFACT_CORE}
    _deep_setdefault(telemetry.extra, extras)
    return telemetry


def merge_artifacts(artifacts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Consolidate worker artifacts (in the given order) into one."""
    telemetry = Telemetry()
    for artifact in artifacts:
        if artifact:
            absorb_artifact(telemetry, artifact)
    return telemetry.artifact()


# ----------------------------------------------------------------------
# Sharded journals: split by execution origin, merge back to serial bytes
# ----------------------------------------------------------------------
# The sharded engine (repro.sim.shard) stamps every journal event with a
# non-serialized (dispatch_index, ordinal, shard) origin.  split breaks
# one journal into per-shard parts whose ids are locally dense — the
# shape per-worker journals naturally have — with order keys and a
# cross-shard parent side table; merge interleaves the parts back by
# origin order under the same id-remapping scheme absorb_artifact uses.
# Round-tripping the serial journal through split+merge and comparing
# bytes is the "journal is the merge proof" witness for a sharded run.


def split_journal_by_origin(
    journal: Journal, n_shards: int
) -> List[Dict[str, Any]]:
    """Break ``journal`` into per-shard parts by each event's origin.

    Events recorded outside any dispatch (build-time, origin None) sort
    before every dispatch and land on shard 0, as do events whose
    origin shard falls outside ``[0, n_shards)`` (the engine maps
    bracket records there the same way).

    Each part is ``{"shard", "journal", "order", "xparents"}``: event
    dicts with shard-locally dense ids, one ``(dispatch_index,
    ordinal)`` order key per event, and a ``local_id -> (shard,
    local_id)`` side table for parent links that cross shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1 (got {n_shards})")
    parts: List[Dict[str, Any]] = [
        {"shard": s, "journal": [], "order": [], "xparents": {}}
        for s in range(n_shards)
    ]
    placed: Dict[int, Tuple[int, int]] = {}  # original id -> (shard, local)
    for index, event in enumerate(journal.events):
        origin = getattr(event, "origin", None)
        if origin is None:
            shard = 0
            key: Tuple[int, int] = (-1, index)
        else:
            shard = origin[2] if 0 <= origin[2] < n_shards else 0
            key = (origin[0], origin[1])
        part = parts[shard]
        local = len(part["journal"])
        placed[event.event_id] = (shard, local)
        d = event.as_dict()
        d["id"] = local
        if event.parent_id is not None:
            pshard, plocal = placed[event.parent_id]
            if pshard == shard:
                d["parent"] = plocal
            else:
                d["parent"] = None
                part["xparents"][str(local)] = [pshard, plocal]
        part["journal"].append(d)
        part["order"].append(list(key))
    return parts


def merge_shard_journals(parts: Sequence[Dict[str, Any]]) -> Journal:
    """Interleave per-shard journal parts back into one journal.

    Events merge in origin order (build-time events first, then by
    ``(dispatch_index, ordinal)``); ids are reassigned densely and
    parent links — local and cross-shard — are remapped, the same
    offset-style surgery :func:`absorb_artifact` performs for pool
    workers.  Origin keys must be unique across parts (they are a total
    order on the serial record sequence).
    """
    rows: List[Tuple[Tuple[int, int], int, int, Dict[str, Any]]] = []
    for part in parts:
        shard = int(part["shard"])
        order = part["order"]
        events = part["journal"]
        if len(order) != len(events):
            raise ValueError(
                f"shard {shard}: {len(events)} events but {len(order)} order keys"
            )
        for local, (d, key) in enumerate(zip(events, order)):
            rows.append(((int(key[0]), int(key[1])), shard, local, d))
    rows.sort(key=lambda r: r[0])
    for (key, _s, _l, _d), (key2, s2, _l2, d2) in zip(rows, rows[1:]):
        if key == key2:
            raise ValueError(
                f"duplicate origin key {key} (shard {s2}, event {d2.get('id')})"
            )
    new_id: Dict[Tuple[int, int], int] = {
        (shard, local): i for i, (_key, shard, local, _d) in enumerate(rows)
    }
    merged = Journal()
    for i, (_key, shard, local, d) in enumerate(rows):
        parent = d.get("parent")
        # Cross-shard parents are None here; the side-table pass below
        # resolves them.
        parent_id = new_id[(shard, int(parent))] if parent is not None else None
        merged.events.append(
            JournalEvent(i, d["name"], d["t"], parent_id, dict(d.get("attrs", {})))
        )
    # Second pass: resolve cross-shard parents from the side tables (the
    # first pass left them None).
    for part in parts:
        shard = int(part["shard"])
        for local_str, (pshard, plocal) in part["xparents"].items():
            child = new_id[(shard, int(local_str))]
            merged.events[child].parent_id = new_id[(int(pshard), int(plocal))]
    return merged
