"""Merging per-worker telemetry artifacts into one consolidated run.

Workers cannot share a live :class:`~repro.obs.telemetry.Telemetry`
(its span clock is a closure over the worker's simulator), so each
instrumented task builds its own and ships the JSON-ready *artifact*
back.  This module folds those artifacts into a parent telemetry:

* metrics merge via :meth:`MetricsRegistry.merge` (counter adds,
  histogram bucket adds);
* spans are re-materialized with their ids offset past the parent's,
  preserving parent/child links — exactly what sequential serial runs
  sharing one recorder would have produced;
* journal events merge under the same id-offsetting scheme, so the
  consolidated flight recorder is byte-identical to a serial run's;
* engine profiles accumulate (sums; heap high-water max);
* leftover ``extra`` keys deep-merge with setdefault semantics,
  matching how serial runs populate ``telemetry.extra``.

Both helpers are order-sensitive by design: callers absorb in task
order (never completion order) so serial and parallel artifacts are
byte-identical modulo wall-time fields — :func:`strip_volatile`
removes those for comparisons.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence

from ..obs.journal import JournalEvent
from ..obs.registry import MetricsRegistry
from ..obs.spans import Span
from ..obs.telemetry import Telemetry

__all__ = ["absorb_artifact", "merge_artifacts", "strip_volatile", "VOLATILE_KEYS"]

# Wall-clock-derived fields: the only artifact entries allowed to
# differ between a serial and an N-worker run of the same sweep.
# "wall_s" is the per-dimension attribution wall time (the companion
# "events" counts are deterministic and must match serial vs pool).
VOLATILE_KEYS = frozenset(
    {"wall_time_s", "wall_time", "events_per_sec", "wall_per_sim_sec", "wall_s"}
)

_ARTIFACT_CORE = ("schema", "metrics", "spans", "journal", "engine")


def strip_volatile(obj: Any, keys: Iterable[str] = VOLATILE_KEYS) -> Any:
    """A deep copy of ``obj`` with all wall-time fields removed."""
    keyset = frozenset(keys)
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v, keyset)
            for k, v in obj.items()
            if k not in keyset
        }
    if isinstance(obj, (list, tuple)):
        return [strip_volatile(v, keyset) for v in obj]
    return obj


def _deep_setdefault(dst: Dict[str, Any], src: Dict[str, Any]) -> None:
    """Merge ``src`` into ``dst`` without overwriting existing scalars
    (the dict analogue of ``setdefault``, applied recursively)."""
    for key, value in src.items():
        if key in dst and isinstance(dst[key], dict) and isinstance(value, dict):
            _deep_setdefault(dst[key], value)
        else:
            dst.setdefault(key, value)


def absorb_artifact(telemetry: Telemetry, artifact: Dict[str, Any]) -> Telemetry:
    """Fold one worker's run artifact into ``telemetry`` in place."""
    metrics = artifact.get("metrics")
    if metrics:
        telemetry.registry.merge(MetricsRegistry.from_dict(metrics))

    offset = len(telemetry.spans.spans)
    for d in artifact.get("spans", ()):
        parent = d.get("parent_id")
        span = Span(
            d["span_id"] + offset,
            d["name"],
            d["start"],
            parent + offset if parent is not None else None,
            dict(d.get("attrs", {})),
        )
        span.end = d.get("end")
        telemetry.spans.spans.append(span)
        telemetry.spans._by_id[span.span_id] = span

    event_offset = len(telemetry.journal.events)
    for d in artifact.get("journal", ()):
        parent = d.get("parent")
        telemetry.journal.events.append(
            JournalEvent(
                int(d["id"]) + event_offset,
                d["name"],
                d["t"],
                parent + event_offset if parent is not None else None,
                dict(d.get("attrs", {})),
            )
        )

    engine = artifact.get("engine")
    if engine:
        prof = telemetry.profiler
        prof.runs += int(engine.get("runs", 0))
        prof.events += int(engine.get("events_processed", 0))
        prof.wall_time += float(engine.get("wall_time_s", 0.0))
        prof.sim_time += float(engine.get("sim_time_s", 0.0))
        prof.note_heap(int(engine.get("heap_hwm_events", 0)))
        dims = engine.get("dimensions")
        if dims:
            prof.merge_dimension_rows(dims)

    extras = {k: v for k, v in artifact.items() if k not in _ARTIFACT_CORE}
    _deep_setdefault(telemetry.extra, extras)
    return telemetry


def merge_artifacts(artifacts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Consolidate worker artifacts (in the given order) into one."""
    telemetry = Telemetry()
    for artifact in artifacts:
        if artifact:
            absorb_artifact(telemetry, artifact)
    return telemetry.artifact()
