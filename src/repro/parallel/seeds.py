"""Deterministic per-task seed derivation.

A sweep task's seed is a pure function of the experiment's root seed
and the task's identity path — never of worker id, submission order, or
wall clock — so the same sweep produces the same per-task seeds whether
it runs serially, on 2 workers, on 16, or resumed from a checkpoint.

This reuses the simulator's own :func:`repro.sim.rng.derive_seed`
(SHA-256 of ``"{seed}:{name}"``), keeping one derivation discipline
across the whole stack.
"""

from __future__ import annotations

from typing import List

from ..sim.rng import derive_seed

__all__ = ["derive_task_seed", "replicate_seeds"]


def derive_task_seed(root_seed: int, *path: object) -> int:
    """A 64-bit seed for the task identified by ``path`` components.

    >>> derive_task_seed(0, "replicate", 3) == derive_task_seed(0, "replicate", 3)
    True
    >>> derive_task_seed(0, "replicate", 3) != derive_task_seed(1, "replicate", 3)
    True
    """
    name = "task/" + "/".join(str(p) for p in path)
    return derive_seed(int(root_seed), name)


def replicate_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` independent replication seeds derived from ``root_seed``."""
    if n < 0:
        raise ValueError(f"n must be >= 0 (got {n})")
    return [derive_task_seed(root_seed, "replicate", i) for i in range(n)]
