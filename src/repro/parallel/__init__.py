"""repro.parallel — deterministic multiprocessing fan-out for sweeps.

Every paper figure is a set of *independent* ``run_tree_scenario``
calls, so reproducing the figure set parallelizes embarrassingly.  This
package provides the substrate:

* :class:`Task` / :class:`TaskOutcome` — the unit of work (a picklable
  module-level function plus payload, under a stable string id) and its
  recorded result;
* :func:`run_tasks` / :class:`PoolConfig` — a supervised worker pool
  with per-task timeout, bounded retry, and poison-task quarantine, so
  one pathological parameter point can neither hang nor kill a sweep;
* :func:`derive_task_seed` — SHA-256 seed derivation keyed on the task
  identity, so results are identical regardless of worker count or
  scheduling order;
* :class:`SweepCheckpoint` — JSON checkpoint/resume of partially
  completed sweeps (only the missing tasks re-run);
* :func:`absorb_artifact` / :func:`merge_artifacts` — fold per-worker
  telemetry artifacts (:mod:`repro.obs`) into one consolidated run
  artifact, deterministically (merge order = task order).

Determinism contract: a task carries its full parameter set including
its derived seed, workers never share RNG state, and all merges happen
in task-list order — so serial and N-worker runs produce byte-identical
artifacts modulo wall-time fields (:func:`strip_volatile` removes
those for comparisons).
"""

from .checkpoint import SweepCheckpoint
from .merge import absorb_artifact, merge_artifacts, strip_volatile
from .pool import (
    PARTIAL_FAILURE_EXIT,
    PoolConfig,
    PoolReport,
    resolve_jobs,
    run_tasks,
)
from .seeds import derive_task_seed, replicate_seeds
from .tasks import Task, TaskOutcome

__all__ = [
    "PARTIAL_FAILURE_EXIT",
    "PoolConfig",
    "PoolReport",
    "SweepCheckpoint",
    "Task",
    "TaskOutcome",
    "absorb_artifact",
    "derive_task_seed",
    "merge_artifacts",
    "replicate_seeds",
    "resolve_jobs",
    "run_tasks",
    "strip_volatile",
]
