"""The unit of pool work and its recorded outcome.

A :class:`Task` is a stable string id, a *module-level* function (it is
pickled by reference and re-imported inside worker processes — lambdas
and closures will not survive the trip), and an arbitrary picklable
payload.  A :class:`TaskOutcome` is what the pool hands back: either
``status == "ok"`` with the function's return value, or
``status == "quarantined"`` with the error of the final attempt.

Outcomes serialize to JSON-ready dicts (for checkpoints and sweep
artifacts); ``wall_time_s`` is the only non-deterministic field and is
excluded by :func:`repro.parallel.merge.strip_volatile` when artifacts
are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = ["Task", "TaskOutcome", "STATUS_OK", "STATUS_QUARANTINED"]

STATUS_OK = "ok"
STATUS_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class Task:
    """One independent unit of work for the pool."""

    task_id: str
    fn: Callable[[Any], Any]
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be a non-empty string")


@dataclass
class TaskOutcome:
    """What happened to one task (after retries, if any)."""

    task_id: str
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    wall_time_s: float = 0.0
    resumed: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "task_id": self.task_id,
            "status": self.status,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
        }
        if include_timing:
            d["wall_time_s"] = round(self.wall_time_s, 6)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any], resumed: bool = False) -> "TaskOutcome":
        return cls(
            task_id=d["task_id"],
            status=d["status"],
            value=d.get("value"),
            error=d.get("error"),
            attempts=int(d.get("attempts", 1)),
            wall_time_s=float(d.get("wall_time_s", 0.0)),
            resumed=resumed,
        )
