"""Supervised multiprocessing run pool with fault tolerance.

Architecture: the supervisor owns one duplex pipe per worker process
and dispatches one task at a time to each idle worker, so it always
knows *which* task a worker is running and since when.  That is what
makes the three failure modes recoverable:

* a task that **raises** — the worker catches it and reports an error
  reply; the supervisor retries on another attempt (same or different
  worker) up to ``max_attempts``, then quarantines the task;
* a task that **hangs** — the supervisor tracks a per-task deadline;
  on timeout it terminates the worker, respawns a fresh one in its
  slot, and retries/quarantines the task;
* a worker that **dies hard** (``os._exit``, OOM-kill, segfault) — the
  pipe reads EOF / the process stops being alive; same recovery.

A quarantined task never takes the sweep down: the pool records the
failure in its :class:`PoolReport` and keeps draining the queue.
Callers map ``report.ok`` to an exit code (the CLI uses
:data:`PARTIAL_FAILURE_EXIT`).

Determinism: task functions derive all randomness from their payload
(see :mod:`repro.parallel.seeds`), so results do not depend on which
worker ran a task or in what order.  The report keeps outcomes keyed
by task id; merging layers iterate in task-list order.
"""

from __future__ import annotations

import glob
import json
import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _conn_wait
from multiprocessing.context import BaseContext
from typing import Any, Callable, Dict, List, Optional, Sequence

from .tasks import STATUS_OK, STATUS_QUARANTINED, Task, TaskOutcome

__all__ = [
    "PARTIAL_FAILURE_EXIT",
    "PoolConfig",
    "PoolReport",
    "resolve_jobs",
    "run_tasks",
]

# Process exit code for "the sweep finished but some tasks were
# quarantined" — distinct from 0 (all ok) and 1/2 (hard/usage errors).
PARTIAL_FAILURE_EXIT = 3

JOBS_ENV = "REPRO_JOBS"

# Supervisor poll granularity; bounds how late a timeout fires.
_POLL_S = 0.05

# Minimum seconds between pool.status.json rewrites (the supervisor
# polls every _POLL_S; rewriting the status at that rate would be
# wasted I/O nobody can read that fast).
_STATUS_MIN_INTERVAL_S = 0.5


class _PoolStatusWriter:
    """Maintains the live ``pool.status.json`` of one pool run.

    Schema ``repro.pool-status/1``: worker liveness states, task
    progress counts, and the tail snapshot of every per-task telemetry
    stream in the directory — the supervisor-merged pool-level view
    that ``repro watch DIR`` renders.  Rewrites are atomic
    (temp + rename) and throttled; write failures are swallowed so a
    full disk can never take the sweep down.
    """

    def __init__(self, directory: str, jobs: int, total: int) -> None:
        self.directory = directory
        self.jobs = jobs
        self.total = total
        self.done = 0
        self.quarantined = 0
        self.resumed = 0
        self._last = 0.0
        os.makedirs(directory, exist_ok=True)

    def note(self, outcome: TaskOutcome) -> None:
        self.done += 1
        if outcome.status == STATUS_QUARANTINED:
            self.quarantined += 1

    def _stream_tails(self) -> Dict[str, Any]:
        from ..obs.stream import tail_record  # lazy: obs is optional here

        tails: Dict[str, Any] = {}
        pattern = os.path.join(self.directory, "*.stream.jsonl")
        for path in sorted(glob.glob(pattern)):
            rec = tail_record(path)
            if rec is None:
                continue
            name = os.path.basename(path)[: -len(".stream.jsonl")]
            engine = rec.get("engine", {})
            sources = rec.get("sources", {})
            tails[name] = {
                "t": rec.get("t"),
                "seq": rec.get("seq"),
                "final": bool(rec.get("final")),
                "events": engine.get("events"),
                "events_per_sec": engine.get("events_per_sec"),
                "captures": sources.get("defense", {}).get("captures"),
            }
        return tails

    def write(
        self,
        workers: List[Dict[str, Any]],
        done: bool = False,
        force: bool = False,
    ) -> None:
        now = time.monotonic()
        if not force and now - self._last < _STATUS_MIN_INTERVAL_S:
            return
        self._last = now
        doc = {
            "schema": "repro.pool-status/1",
            "jobs": self.jobs,
            "done": done,
            "tasks": {
                "total": self.total,
                "done": self.done + self.resumed,
                "quarantined": self.quarantined,
                "resumed": self.resumed,
            },
            "workers": workers,
            "streams": self._stream_tails(),
        }
        path = os.path.join(self.directory, "pool.status.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk full etc.
            try:
                os.unlink(tmp)
            except OSError:
                pass


def resolve_jobs(jobs: Optional[int] = None, env: str = JOBS_ENV) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_JOBS``,
    else 1 (serial)."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(env, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(f"{env} must be an integer (got {raw!r})") from None
    return 1


@dataclass
class PoolConfig:
    """Knobs of one pool run.

    ``inline=None`` means "run in-process when jobs <= 1" — the serial
    path then has zero multiprocessing overhead.  Forcing
    ``inline=False`` spawns worker processes even for jobs=1, which the
    golden tests use to prove 1-worker == serial.  Inline execution
    cannot preempt a hung task, so ``timeout`` only applies to
    subprocess workers.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    max_attempts: int = 2
    start_method: Optional[str] = None
    inline: Optional[bool] = None
    # Directory for the live pool-level view: the supervisor rewrites
    # ``pool.status.json`` there (worker liveness + per-task stream
    # tails) so `repro watch DIR` can follow a running sweep.  None
    # disables the writer entirely.
    status_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1 (got {self.jobs})")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive (got {self.timeout})")

    def run_inline(self) -> bool:
        return self.jobs <= 1 if self.inline is None else self.inline

    def mp_context(self) -> BaseContext:
        if self.start_method is not None:
            return mp.get_context(self.start_method)
        # fork is the cheap path on POSIX; spawn works too (tasks are
        # pickled over the pipe either way) but pays interpreter startup.
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
        return mp.get_context()


@dataclass
class PoolReport:
    """Everything a caller needs to know about one pool run."""

    outcomes: Dict[str, TaskOutcome] = field(default_factory=dict)
    executed: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)

    @property
    def quarantined(self) -> List[str]:
        return [t for t, o in self.outcomes.items() if o.status == STATUS_QUARANTINED]

    @property
    def ok(self) -> bool:
        return not self.quarantined

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else PARTIAL_FAILURE_EXIT

    def value(self, task_id: str) -> Any:
        out = self.outcomes[task_id]
        if not out.ok:
            raise KeyError(f"task {task_id!r} was quarantined: {out.error}")
        return out.value

    def as_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        # "tasks" keeps task-list order (deterministic); executed/resumed
        # are sorted because completion order is scheduling-dependent and
        # the artifact must be identical across worker counts.
        return {
            "tasks": [o.as_dict(include_timing) for o in self.outcomes.values()],
            "executed": sorted(self.executed),
            "resumed": sorted(self.resumed),
            "quarantined": self.quarantined,
            "ok": self.ok,
        }


def run_tasks(
    tasks: Sequence[Task],
    config: Optional[PoolConfig] = None,
    checkpoint: Optional[Any] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> PoolReport:
    """Run ``tasks`` to completion; never raises on task failure.

    ``checkpoint`` (a :class:`~repro.parallel.checkpoint.SweepCheckpoint`)
    short-circuits tasks it already holds and records each fresh "ok"
    outcome as it lands, so a killed sweep resumes with exactly the
    missing tasks.  ``on_outcome`` is called once per task (resumed or
    fresh), in completion order — for progress display only; consumers
    needing determinism must iterate ``report.outcomes`` in their own
    task order.
    """
    config = config or PoolConfig()
    report = PoolReport()
    status = (
        _PoolStatusWriter(config.status_dir, config.jobs, len(tasks))
        if config.status_dir
        else None
    )
    # Outcomes are pre-seeded in task order so the report dict iterates
    # deterministically no matter in which order workers finish.
    seen: set = set()
    pending: deque = deque()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        seen.add(task.task_id)
        report.outcomes[task.task_id] = TaskOutcome(task.task_id, "pending")
        done = checkpoint.get(task.task_id) if checkpoint is not None else None
        if done is not None:
            outcome = TaskOutcome.from_dict(done, resumed=True)
            report.outcomes[task.task_id] = outcome
            report.resumed.append(task.task_id)
            if on_outcome is not None:
                on_outcome(outcome)
        else:
            pending.append((task, 0))
    if status is not None:
        status.resumed = len(report.resumed)

    def record(outcome: TaskOutcome) -> None:
        report.outcomes[outcome.task_id] = outcome
        report.executed.append(outcome.task_id)
        if status is not None:
            status.note(outcome)
        if checkpoint is not None and outcome.ok:
            checkpoint.record(outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    if pending:
        if config.run_inline():
            _run_inline(pending, config, record, status)
        else:
            _run_pool(pending, config, record, status)
    if status is not None:
        status.write(workers=[], done=True, force=True)
    return report


# ----------------------------------------------------------------------
# Inline execution (jobs == 1 fast path; no subprocess machinery)
# ----------------------------------------------------------------------
def _run_inline(
    pending: deque,
    config: PoolConfig,
    record: Callable[[TaskOutcome], None],
    status: Optional[_PoolStatusWriter] = None,
) -> None:
    while pending:
        task, attempts = pending.popleft()
        started = time.perf_counter()
        attempts += 1
        if status is not None:
            status.write(
                workers=[
                    {"slot": 0, "state": "inline", "task": task.task_id,
                     "busy_s": 0.0}
                ]
            )
        try:
            value = task.fn(task.payload)
        except Exception as exc:
            err = f"{type(exc).__name__}: {exc}"
            if attempts >= config.max_attempts:
                record(
                    TaskOutcome(
                        task.task_id,
                        STATUS_QUARANTINED,
                        error=err,
                        attempts=attempts,
                        wall_time_s=time.perf_counter() - started,
                    )
                )
            else:
                pending.appendleft((task, attempts))
            continue
        record(
            TaskOutcome(
                task.task_id,
                STATUS_OK,
                value=value,
                attempts=attempts,
                wall_time_s=time.perf_counter() - started,
            )
        )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn: Connection) -> None:  # pragma: no cover - runs in subprocess
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        task_id, fn, payload = msg
        try:
            value = fn(payload)
            reply = (STATUS_OK, task_id, value)
        except BaseException as exc:
            tb = traceback.format_exc(limit=8)
            reply = ("error", task_id, f"{type(exc).__name__}: {exc}\n{tb}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # e.g. unpicklable return value
            conn.send(("error", task_id, f"result not sendable: {exc}"))


class _Worker:
    __slots__ = ("proc", "conn", "task", "attempts", "started", "deadline")

    def __init__(self, ctx: BaseContext) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[Task] = None
        self.attempts = 0
        self.started = 0.0
        self.deadline: Optional[float] = None

    def assign(self, task: Task, attempts: int, timeout: Optional[float]) -> None:
        self.task = task
        self.attempts = attempts + 1
        self.started = time.perf_counter()
        self.deadline = None if timeout is None else self.started + timeout
        self.conn.send((task.task_id, task.fn, task.payload))

    def clear(self) -> None:
        self.task = None
        self.deadline = None

    def kill(self) -> None:
        try:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=2.0)
            if self.proc.is_alive():  # pragma: no cover - stuck in kernel
                self.proc.kill()
                self.proc.join(timeout=2.0)
        finally:
            self.conn.close()

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()
        else:
            self.conn.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
def _worker_states(workers: Sequence[Any], now: float) -> List[Dict[str, Any]]:
    return [
        {
            "slot": i,
            "state": "busy" if w.task is not None else "idle",
            "task": w.task.task_id if w.task is not None else None,
            "busy_s": round(now - w.started, 3) if w.task is not None else 0.0,
        }
        for i, w in enumerate(workers)
    ]


def _run_pool(
    pending: deque,
    config: PoolConfig,
    record: Callable[[TaskOutcome], None],
    status: Optional[_PoolStatusWriter] = None,
) -> None:
    ctx = config.mp_context()
    n_workers = min(config.jobs, len(pending))
    workers: List[Optional[_Worker]] = [_Worker(ctx) for _ in range(n_workers)]

    def fail(worker: _Worker, error: str, respawn_at: Optional[int]) -> None:
        """Handle one failed attempt: retry or quarantine, and optionally
        replace the (dead) worker so its slot keeps draining the queue."""
        task, attempts = worker.task, worker.attempts
        worker.clear()
        if attempts < config.max_attempts:
            pending.append((task, attempts))
        else:
            record(
                TaskOutcome(
                    task.task_id,
                    STATUS_QUARANTINED,
                    error=error,
                    attempts=attempts,
                    wall_time_s=time.perf_counter() - worker.started,
                )
            )
        if respawn_at is not None:
            worker.kill()
            workers[respawn_at] = _Worker(ctx)

    try:
        while pending or any(w.task is not None for w in workers):
            for i, w in enumerate(workers):
                if w.task is None and pending:
                    task, attempts = pending.popleft()
                    try:
                        w.assign(task, attempts, config.timeout)
                    except (BrokenPipeError, OSError):
                        fail(w, "worker pipe broken at dispatch", respawn_at=i)
            if status is not None:
                status.write(_worker_states(workers, time.perf_counter()))
            busy = [w for w in workers if w.task is not None]
            if not busy:
                continue
            ready = _conn_wait([w.conn for w in busy], timeout=_POLL_S)
            now = time.perf_counter()
            for i, w in enumerate(workers):
                if w.task is None:
                    continue
                if w.conn in ready:
                    try:
                        kind, task_id, payload = w.conn.recv()
                    except (EOFError, OSError):
                        code = w.proc.exitcode
                        fail(
                            w,
                            f"worker died mid-task (exit code {code})",
                            respawn_at=i,
                        )
                        continue
                    wall = now - w.started
                    if kind == STATUS_OK:
                        record(
                            TaskOutcome(
                                task_id,
                                STATUS_OK,
                                value=payload,
                                attempts=w.attempts,
                                wall_time_s=wall,
                            )
                        )
                        w.clear()
                    else:
                        fail(w, str(payload), respawn_at=None)
                elif w.deadline is not None and now > w.deadline:
                    fail(
                        w,
                        f"timeout: task exceeded {config.timeout:g}s",
                        respawn_at=i,
                    )
                elif not w.proc.is_alive():
                    fail(
                        w,
                        f"worker died mid-task (exit code {w.proc.exitcode})",
                        respawn_at=i,
                    )
    finally:
        for w in workers:
            w.shutdown()
