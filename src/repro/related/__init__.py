"""Related-work baselines the paper compares against (Section 2).

* :mod:`~repro.related.ppm` — probabilistic packet marking traceback
  (collection cost; compromised-router false positives);
* :mod:`~repro.related.sos` — SOS overlay indirection latency model;
* :mod:`~repro.related.mohonk` — mobile honeypots source filtering.
"""

from .mohonk import AddressSpace, MohonkFilter
from .ppm import (
    EdgeMark,
    PPMResult,
    PPMRouter,
    PPMVictim,
    expected_packets_for_path,
    simulate_ppm_traceback,
)
from .sos import SOSConfig, SOSOverlay, latency_multiplier

__all__ = [
    "AddressSpace",
    "EdgeMark",
    "MohonkFilter",
    "PPMResult",
    "PPMRouter",
    "PPMVictim",
    "SOSConfig",
    "SOSOverlay",
    "expected_packets_for_path",
    "latency_multiplier",
    "simulate_ppm_traceback",
]
