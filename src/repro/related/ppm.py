"""Probabilistic packet marking (PPM) traceback — related-work baseline.

Section 2: "Packet marking schemes construct attack paths locally at
the victim by collecting markings stamped into packets by intermediate
routers.  However, these schemes are vulnerable to compromised routers,
which can inject forged markings to increase the number of false
positives."

This module implements edge-sampling PPM (Savage et al., the scheme the
paper cites as [38]) faithfully enough to reproduce those two claims:

* **collection cost** — reconstructing a path of length d needs on the
  order of ``ln(d) / (q (1-q)^(d-1))`` marked packets, so low-rate
  attackers take a long time to trace (the weakness progressive
  honeypot back-propagation addresses);
* **compromised routers** — a subverted router can stamp arbitrary
  (forged) edges into packets, and the victim-side reconstruction has
  no way to tell them from genuine edges: false positives.

The implementation works on any networkx topology: routers mark with
probability ``q`` (start marking / edge completion, distance counting
as in edge sampling), the victim accumulates edge samples and rebuilds
the attack graph by distance-ordered edge stitching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "EdgeMark",
    "PPMRouter",
    "PPMVictim",
    "expected_packets_for_path",
    "simulate_ppm_traceback",
    "PPMResult",
]


@dataclass(frozen=True)
class EdgeMark:
    """The (start, end, distance) triple of edge-sampling PPM."""

    start: int
    end: Optional[int]
    distance: int


class PPMRouter:
    """Edge-sampling marking at one router.

    With probability q the router *starts* a mark (writes its own
    address, distance 0).  Otherwise, if the packet carries a fresh
    mark (distance 0), the router completes the edge by writing itself
    as the edge's end; in every non-start case the distance is
    incremented.
    """

    def __init__(self, addr: int, q: float, rng: np.random.Generator,
                 compromised: bool = False,
                 forged_edge: Optional[Tuple[int, int]] = None) -> None:
        if not 0 < q < 1:
            raise ValueError(f"marking probability must be in (0,1) (got {q})")
        self.addr = addr
        self.q = q
        self.rng = rng
        self.compromised = compromised
        self.forged_edge = forged_edge

    def process(self, mark: Optional[EdgeMark]) -> Optional[EdgeMark]:
        """Transform the packet's current mark as the packet transits."""
        if self.compromised and self.forged_edge is not None:
            # A subverted router overwrites whatever is there with a
            # forged edge pointing the traceback at an innocent branch.
            s, e = self.forged_edge
            return EdgeMark(s, e, 0)
        if self.rng.random() < self.q:
            return EdgeMark(self.addr, None, 0)
        if mark is None:
            return None
        if mark.distance == 0 and mark.end is None:
            return EdgeMark(mark.start, self.addr, 1)
        return EdgeMark(mark.start, mark.end, mark.distance + 1)


class PPMVictim:
    """Victim-side collection and path reconstruction."""

    def __init__(self) -> None:
        # distance -> set of (start, end) edges seen at that distance.
        self.edges_by_distance: Dict[int, Set[Tuple[int, Optional[int]]]] = {}
        self.packets_collected = 0

    def collect(self, mark: Optional[EdgeMark]) -> None:
        self.packets_collected += 1
        if mark is None or mark.end is None:
            return
        self.edges_by_distance.setdefault(mark.distance, set()).add(
            (mark.start, mark.end)
        )

    def reconstruct(self) -> nx.DiGraph:
        """Stitch collected edges into the (candidate) attack graph.

        Edges are added distance-ordered; every edge whose distance is
        consistent with some already-anchored node is kept — which is
        precisely why forged edges become false positives: the victim
        cannot validate them.
        """
        g = nx.DiGraph()
        for distance in sorted(self.edges_by_distance):
            for start, end in self.edges_by_distance[distance]:
                g.add_edge(end, start, distance=distance)
        return g

    def paths_to_sources(self, victim_router: int) -> List[List[int]]:
        """Candidate attack paths: walks from the victim-side router."""
        g = self.reconstruct()
        if victim_router not in g:
            return []
        paths = []
        for node in g.nodes:
            if node == victim_router:
                continue
            if g.out_degree(node) == 0 or True:
                try:
                    path = nx.shortest_path(g, victim_router, node)
                except nx.NetworkXNoPath:
                    continue
                paths.append(path)
        return paths


def expected_packets_for_path(d: int, q: float) -> float:
    """E[packets] to collect a d-hop path: ln(d) / (q (1-q)^(d-1)).

    The classic coupon-collector bound from Savage et al.; the farthest
    edge is the bottleneck because its mark survives only if no later
    router re-marks.
    """
    if d < 1:
        raise ValueError("path length must be >= 1")
    if not 0 < q < 1:
        raise ValueError("marking probability must be in (0,1)")
    return math.log(max(d, 2)) / (q * (1 - q) ** (d - 1))


@dataclass
class PPMResult:
    """Outcome of a PPM traceback simulation."""

    packets_needed: Optional[int]
    true_edges_found: int
    false_edges: int
    reconstructed: nx.DiGraph = field(repr=False, default=None)


def simulate_ppm_traceback(
    path: Sequence[int],
    q: float = 0.04,
    rng: Optional[np.random.Generator] = None,
    max_packets: int = 1_000_000,
    compromised: Optional[Dict[int, Tuple[int, int]]] = None,
) -> PPMResult:
    """Run edge-sampling PPM along one attack path.

    Parameters
    ----------
    path:
        Router addresses from the attacker's first hop to the victim's
        last hop (in travel order).
    q:
        Per-router marking probability (0.04 is the literature default).
    compromised:
        Router addr -> forged (start, end) edge it stamps.
    max_packets:
        Give up after this many packets (returns packets_needed=None).
    """
    rng = rng if rng is not None else np.random.default_rng(0)  # reprolint: ignore[RPL001] -- literal-seed fallback for standalone use; callers pass a registry stream
    compromised = compromised or {}
    routers = [
        PPMRouter(
            addr,
            q,
            rng,
            compromised=addr in compromised,
            forged_edge=compromised.get(addr),
        )
        for addr in path
    ]
    true_edges = {
        (path[i], path[i + 1]) for i in range(len(path) - 1)
    }
    victim = PPMVictim()
    packets_needed = None
    for n in range(1, max_packets + 1):
        mark: Optional[EdgeMark] = None
        for router in routers:
            mark = router.process(mark)
        victim.collect(mark)
        if packets_needed is None:
            seen = {
                (s, e)
                for edges in victim.edges_by_distance.values()
                for (s, e) in edges
            }
            if true_edges <= seen:
                packets_needed = n
                break
    seen = {
        (s, e)
        for edges in victim.edges_by_distance.values()
        for (s, e) in edges
    }
    return PPMResult(
        packets_needed=packets_needed,
        true_edges_found=len(true_edges & seen),
        false_edges=len(seen - true_edges),
        reconstructed=victim.reconstruct(),
    )
