"""SOS-style overlay indirection — related-work latency model.

Section 2: "The SOS architecture tackles the same problem as ours: DoS
attack in the context of a private service with predetermined clients.
However, the latency caused by the hash-based routing in SOS can be up
to 10 times the direct communication latency.  Our work aims at
providing a more efficient solution by avoiding hash-based routing and
by taking actions only when attacks occur."

SOS routes every client request through an overlay: a SOAP (access
point), Chord-style hash routing to a *beacon*, then a *secret
servlet* which alone may cross the filtered perimeter to the target.
We model the latency structure: N overlay nodes, Chord lookup costs
O(log N) overlay hops, each overlay hop is an independent underlay
path.  The comparison the paper makes is the steady-state latency
multiplier vs direct communication — honeypot back-propagation imposes
no indirection at all when no attack is in progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SOSConfig", "SOSOverlay", "latency_multiplier"]


@dataclass
class SOSConfig:
    """Latency model parameters."""

    n_overlay_nodes: int = 128
    # Mean one-way underlay latency between random overlay nodes (s).
    mean_underlay_latency: float = 0.04
    # Client -> SOAP and servlet -> target are ordinary underlay paths.
    mean_access_latency: float = 0.02
    # Direct client -> server latency the overlay replaces (s).
    mean_direct_latency: float = 0.03


class SOSOverlay:
    """Samples request latencies through the SOS indirection chain."""

    def __init__(self, config: Optional[SOSConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config or SOSConfig()
        if self.config.n_overlay_nodes < 2:
            raise ValueError("need at least 2 overlay nodes")
        self.rng = rng if rng is not None else np.random.default_rng(0)  # reprolint: ignore[RPL001] -- literal-seed fallback for standalone use; callers pass a registry stream

    def chord_hops(self) -> int:
        """Chord lookup path length: ~(1/2) log2 N expected, sampled."""
        n = self.config.n_overlay_nodes
        mean = 0.5 * math.log2(n)
        return max(1, int(self.rng.poisson(mean)))

    def sample_request_latency(self) -> float:
        """One request's one-way latency through the overlay (s)."""
        cfg = self.config
        # client -> SOAP
        total = self.rng.exponential(cfg.mean_access_latency)
        # SOAP -> beacon via Chord: each overlay hop is an underlay path.
        for _ in range(self.chord_hops()):
            total += self.rng.exponential(cfg.mean_underlay_latency)
        # beacon -> secret servlet -> target
        total += self.rng.exponential(cfg.mean_underlay_latency)
        total += self.rng.exponential(cfg.mean_access_latency)
        return total

    def sample_direct_latency(self) -> float:
        return self.rng.exponential(self.config.mean_direct_latency)


def latency_multiplier(
    config: Optional[SOSConfig] = None,
    samples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean overlay latency divided by mean direct latency.

    The paper's claim ("up to 10 times the direct communication
    latency") corresponds to this multiplier landing well above 1 for
    Internet-scale overlays.
    """
    overlay = SOSOverlay(config, rng)
    over = np.mean([overlay.sample_request_latency() for _ in range(samples)])
    direct = np.mean([overlay.sample_direct_latency() for _ in range(samples)])
    return float(over / direct)
