"""Mobile honeypots (Mohonk) — related-work prevention baseline.

Section 2: "The Mohonk, or mobile honeypots, scheme propagates unused
addresses using BGP options, so that (spoofed) packets with matching
source addresses can be safely dropped.  Our scheme makes it difficult
for attackers to discover and avoid sending traffic to unused
addresses."

We model the address-space mechanics: a pool of unused prefixes is
advertised; a router drops any packet whose *source* falls in an
advertised unused prefix.  Effectiveness against random spoofing
equals the advertised fraction of the address space — and an attacker
that learns the advertised set evades entirely, which is why Mohonk
rotates the set (and why roaming honeypots camouflage theirs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

__all__ = ["AddressSpace", "MohonkFilter"]


@dataclass(frozen=True)
class AddressSpace:
    """A flat address space [0, size) partitioned into equal blocks."""

    size: int = 1 << 20
    block: int = 1 << 10

    def __post_init__(self) -> None:
        if self.size <= 0 or self.block <= 0 or self.size % self.block:
            raise ValueError("size must be a positive multiple of block")

    @property
    def n_blocks(self) -> int:
        return self.size // self.block

    def block_of(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise ValueError(f"address {addr} outside the space")
        return addr // self.block


class MohonkFilter:
    """Drops packets whose claimed source is an advertised unused block."""

    def __init__(
        self,
        space: AddressSpace,
        unused_fraction: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= unused_fraction <= 1.0:
            raise ValueError("unused_fraction must be in [0, 1]")
        self.space = space
        self.rng = rng if rng is not None else np.random.default_rng(0)  # reprolint: ignore[RPL001] -- literal-seed fallback for standalone use; callers pass a registry stream
        n = int(round(unused_fraction * space.n_blocks))
        self._advertised: Set[int] = set(
            int(b) for b in self.rng.choice(space.n_blocks, size=n, replace=False)
        ) if n else set()
        self.dropped = 0
        self.passed = 0

    @property
    def advertised_blocks(self) -> Set[int]:
        return set(self._advertised)

    def rotate(self) -> None:
        """Re-draw the advertised set (the 'mobile' part of Mohonk)."""
        n = len(self._advertised)
        self._advertised = set(
            int(b)
            for b in self.rng.choice(self.space.n_blocks, size=n, replace=False)
        ) if n else set()

    def check(self, src_addr: int) -> bool:
        """True = drop (the claimed source is advertised-unused)."""
        if self.space.block_of(src_addr) in self._advertised:
            self.dropped += 1
            return True
        self.passed += 1
        return False

    # ------------------------------------------------------------------
    def catch_rate_random_spoofing(self, samples: int = 10_000) -> float:
        """Fraction of uniformly spoofed packets dropped (~ advertised
        fraction of the space)."""
        drops = 0
        for _ in range(samples):
            addr = int(self.rng.integers(self.space.size))
            if self.space.block_of(addr) in self._advertised:
                drops += 1
        return drops / samples

    def catch_rate_informed_attacker(self) -> float:
        """An attacker that knows the advertised set spoofs around it."""
        return 0.0
