"""repro — Honeypot back-propagation for mitigating spoofing DDoS attacks.

A from-scratch reproduction of Khattab, Melhem, Mossé & Znati,
J. Parallel Distrib. Comput. 66 (2006) 1152–1164.

Packages
--------
``repro.sim``
    Discrete-event, packet-level network simulator (the ns-2 substitute).
``repro.topology``
    String, Fig.-7 tree, and AS-level topology generators.
``repro.crypto``
    Hash chains and control-message authentication.
``repro.honeypots``
    The roaming honeypots substrate: schedules, server pool,
    subscriptions, blacklisting, connection checkpointing.
``repro.traffic``
    CBR clients, spoofing zombies, on-off and follower attackers.
``repro.pushback``
    The ACC/Pushback baseline (and level-k max–min fairness).
``repro.backprop``
    The paper's contribution: intra-AS (router-level) and inter-AS
    (HSM-level) honeypot back-propagation, progressive scheme,
    incremental deployment.
``repro.defense``
    Pluggable defense harness for the packet simulator.
``repro.analysis``
    Section 7's capture-time equations.
``repro.experiments``
    Scenario builders and batch runners for every figure.
``repro.obs``
    Unified observability: metrics registry, span timelines,
    simulator self-profiling, and run-artifact exporters.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analysis,
    backprop,
    crypto,
    defense,
    experiments,
    honeypots,
    obs,
    pushback,
    related,
    sim,
    topology,
    traffic,
)

__all__ = [
    "analysis",
    "backprop",
    "crypto",
    "defense",
    "experiments",
    "honeypots",
    "obs",
    "pushback",
    "related",
    "sim",
    "topology",
    "traffic",
    "__version__",
]
