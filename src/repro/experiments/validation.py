"""Model validation on the string topology (Section 8.2 / Fig. 6).

"To focus on the attack path, we use a string topology with one server
at one end and an attacker at the other end.  We vary the epoch length
m, the honeypot probability p, and the hop distance h ... and plot the
average capture time against Eq. (3)," which "serves as an upper bound
of the average capture-time."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.capture_time import basic_continuous
from ..backprop.intraas import IntraASConfig
from ..defense.honeypot_backprop import HoneypotBackpropDefense
from ..honeypots.roaming import RoamingServerPool
from ..honeypots.schedule import BernoulliSchedule
from ..sim.network import Network
from ..sim.rng import RngRegistry, derive_seed
from ..topology.string import build_string_topology
from ..traffic.sources import CBRSource

__all__ = ["ValidationParams", "ValidationOutcome", "run_trial", "run_validation"]


@dataclass(frozen=True)
class ValidationParams:
    """One point of the Fig. 6 sweeps."""

    hops: int = 10
    p: float = 0.3
    epoch_len: float = 10.0
    rate_bps: float = 0.1e6
    packet_size: int = 500
    link_bw: float = 10e6
    link_delay: float = 0.010
    runs: int = 10
    seed: int = 0

    @property
    def rate_pps(self) -> float:
        return self.rate_bps / (8.0 * self.packet_size)

    @property
    def tau_estimate(self) -> float:
        """Per-hop propagation time of a request in the packet sim:
        link delay + control transmission + router processing."""
        control_tx = 64 * 8.0 / self.link_bw
        return self.link_delay + control_tx + IntraASConfig().processing_delay


@dataclass
class ValidationOutcome:
    params: ValidationParams
    capture_times: List[float]
    predicted: float  # Eq. (3)

    @property
    def mean_capture_time(self) -> float:
        return float(np.mean(self.capture_times)) if self.capture_times else float("nan")

    @property
    def within_bound(self) -> bool:
        """Eq. (3) is an upper bound on the average capture time (with
        slack for the finite trigger threshold and per-hop latencies)."""
        if not self.capture_times:
            return False
        slack = 1.25
        return self.mean_capture_time <= self.predicted * slack


def run_trial(
    params: ValidationParams, run_index: int, telemetry=None
) -> Optional[float]:
    """One capture-time measurement; None if never captured.

    ``telemetry`` (a :class:`repro.obs.Telemetry` or None) instruments
    the trial's simulator and defense.
    """
    seed = derive_seed(params.seed, f"validation-{run_index}")
    rng = RngRegistry(seed).stream("attack-phase")

    topo = build_string_topology(
        params.hops,
        bandwidth=params.link_bw,
        delay=params.link_delay,
    )
    net = Network.from_graph(topo.graph)
    net.build_routes(targets=[topo.server_id])

    if telemetry is not None:
        telemetry.bind(net.sim)
    schedule = BernoulliSchedule(params.p, params.epoch_len, seed=seed)
    server = net.nodes[topo.server_id]
    pool = RoamingServerPool(net.sim, [server], schedule, delta=0.0, gamma=0.0)
    defense = HoneypotBackpropDefense(
        pool, net.nodes[topo.server_access_router], IntraASConfig()
    )
    defense.use_telemetry(telemetry)
    defense.attach(net)

    attacker = net.nodes[topo.attacker_id]
    source = CBRSource(
        net.sim,
        attacker,
        topo.server_id,
        params.rate_bps,
        params.packet_size,
        flow=("attack", attacker.addr),
    )
    # Start at a uniformly random phase within an epoch, so the attack
    # start is independent of epoch boundaries (as in the analysis).
    attack_start = params.epoch_len * (1.0 + float(rng.uniform()))
    source.start(at=attack_start)

    # Run in epoch-sized chunks until the attacker's port is blocked.
    max_time = attack_start + 50.0 * params.epoch_len / max(params.p, 1e-6)
    while not defense.captures and net.sim.now < max_time:
        net.run(until=min(net.sim.now + params.epoch_len, max_time))
    if telemetry is not None:
        telemetry.snapshot_network(net)
        telemetry.record_stats(defense.stats(), prefix=f"{defense.name}_")
        if defense.captures:
            telemetry.registry.histogram("capture_time_seconds").observe(
                defense.captures[0].time - attack_start
            )
    if not defense.captures:
        return None
    return defense.captures[0].time - attack_start


def run_validation(
    params: ValidationParams, telemetry=None
) -> ValidationOutcome:
    """Average capture time over replicated runs vs the Eq. (3) bound."""
    times = []
    for i in range(params.runs):
        t = run_trial(params, i, telemetry=telemetry)
        if t is not None:
            times.append(t)
    predicted = basic_continuous(
        params.epoch_len, params.p, params.hops, params.rate_pps, params.tau_estimate
    )
    return ValidationOutcome(params, times, predicted)
