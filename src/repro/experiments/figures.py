"""Figure regeneration as plain functions (shared by the CLI).

Each ``figN`` function runs the corresponding experiment at a chosen
scale and returns the formatted text the paper's figure reports.  The
benchmark suite (``benchmarks/bench_*.py``) layers shape *assertions*
on top of the same underlying scenarios.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, Optional

import numpy as np

from ..analysis.capture_time import progressive_continuous, progressive_onoff
from ..sim.rng import RngRegistry
from ..topology.distributions import PAPER_HOP_COUNT_DIST
from ..topology.tree import TreeParams, build_tree_topology
from .runner import render_table, run_many
from .scenarios import (
    PARAMETER_TABLE,
    TreeScenarioParams,
    paper_scale,
)
from .validation import ValidationParams, run_validation

__all__ = ["FIGURES", "figure"]


def _scenario_base(
    scale: str, scheduler: Optional[str] = None
) -> TreeScenarioParams:
    base = TreeScenarioParams(seed=1, scheduler=scheduler)
    if scale == "paper":
        return paper_scale(base)
    if scale == "quick":
        return replace(
            base, n_leaves=50, duration=60.0, attack_start=10.0, attack_end=50.0
        )
    return base


def fig5(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    m, p, h, r, tau = 10.0, 0.4, 10, 10.0, 1.0
    lines = [
        "Fig. 5 — analytical capture time, progressive back-propagation",
        f"continuous floor: {progressive_continuous(m, p, h, r, tau):.1f} s",
    ]
    for t_off in (5.0, 10.0):
        pts = []
        for t_on in np.arange(2.4, 60.0, 3.2):
            ct = progressive_onoff(m, p, h, r, tau, float(t_on), t_off)
            pts.append(f"{t_on:.0f}:{'inf' if math.isinf(ct) else f'{ct:.0f}'}")
        lines.append(f"on-off t_off={t_off:g}s  " + "  ".join(pts))
    return "\n".join(lines)


def fig6(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    runs = 3 if scale == "quick" else 8
    base = ValidationParams(hops=10, p=0.3, epoch_len=10.0, runs=runs, seed=7)
    lines = ["Fig. 6 — Eq. (3) validation (sim mean vs m/p bound)"]
    sweeps = {
        "p": ("p", [0.2, 0.4, 0.8], base),
        "m": ("epoch_len", [5.0, 10.0, 20.0], replace(base, hops=20)),
        "h": ("hops", [2, 10, 20], replace(base, epoch_len=30.0)),
    }
    for label, (field, values, b) in sweeps.items():
        rows = []
        for v in values:
            out = run_validation(replace(b, **{field: v}))
            rows.append([v, f"{out.mean_capture_time:.2f}", f"{out.predicted:.2f}"])
        lines.append(render_table([label, "sim (s)", "Eq.3 (s)"], rows))
        lines.append("")
    return "\n".join(lines)


def fig7(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    n_leaves = 100 if scale == "quick" else 400
    topo = build_tree_topology(
        TreeParams(n_leaves=n_leaves), RngRegistry(0).stream("fig7.topology")
    )
    hops = topo.hop_count_histogram()
    total = sum(hops.values())
    rows = [
        [h, n, f"{n / total:.3f}", f"{PAPER_HOP_COUNT_DIST.pmf().get(h, 0):.3f}"]
        for h, n in hops.items()
    ]
    lines = [
        "Fig. 7 — topology distributions",
        render_table(["hops", "count", "fraction", "target"], rows),
        "",
        render_table(
            ["degree", "count"], [[d, n] for d, n in topo.degree_histogram().items()]
        ),
    ]
    return "\n".join(lines)


def fig8(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    base = _scenario_base(scale, scheduler)
    lines = [
        "Fig. 8 — legitimate throughput (%) over time, "
        f"attack in [{base.attack_start:.0f}, {base.attack_end:.0f}] s"
    ]
    # Telemetry instruments the honeypot run (the defense under study);
    # the baselines run uninstrumented on their own simulators.
    results = run_many(
        {
            name: replace(base, defense=name)
            for name in ("honeypot", "pushback", "none")
        },
        jobs=jobs,
        telemetry=telemetry,
        instrument=lambda name: telemetry is not None and name == "honeypot",
        stream=stream,
    )
    lines.append("t(s)  " + "  ".join(f"{n:>9s}" for n in results))
    times = results["none"].times
    step = max(1, len(times) // 20)
    for i in range(0, len(times), step):
        lines.append(
            f"{times[i]:5.0f} "
            + "  ".join(f"{results[n].legit_pct[i]:9.1f}" for n in results)
        )
    hp = results["honeypot"]
    lines.append(
        f"captures: {len(hp.capture_times)}/{base.n_attackers}, "
        f"false: {hp.false_captures}"
    )
    if telemetry is not None:
        telemetry.extra["fig8"] = {
            "times": list(times),
            "legit_pct": {n: list(r.legit_pct) for n, r in results.items()},
            "attack_pct": {n: list(r.attack_pct) for n, r in results.items()},
        }
    return "\n".join(lines)


def fig9(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    return "Fig. 9 — simulation parameters\n" + render_table(
        ["parameter", "values studied", "default"], PARAMETER_TABLE
    )


def fig10(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    base = _scenario_base(scale, scheduler)
    placements = ("far", "even", "close")
    defenses = ("honeypot", "pushback", "none")
    results = run_many(
        {
            (p, d): replace(base, placement=p, defense=d)
            for p in placements
            for d in defenses
        },
        jobs=jobs,
        telemetry=telemetry,
        instrument=lambda key: telemetry is not None and key[1] == "honeypot",
        stream=stream,
    )
    rows = [
        [p] + [f"{results[(p, d)].legit_pct_during_attack:.1f}" for d in defenses]
        for p in placements
    ]
    return "Fig. 10 — client throughput (%) vs attacker location\n" + render_table(
        ["location", "honeypot", "pushback", "none"], rows
    )


def fig11(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    base = replace(_scenario_base(scale, scheduler), attacker_rate=0.5e6)
    counts = (5, 25) if scale == "quick" else (5, 10, 25, 50)
    defenses = ("honeypot", "pushback", "none")
    results = run_many(
        {
            (n, d): replace(base, n_attackers=n, defense=d)
            for n in counts
            for d in defenses
        },
        jobs=jobs,
        telemetry=telemetry,
        instrument=lambda key: telemetry is not None and key[1] == "honeypot",
        stream=stream,
    )
    rows = [
        [n] + [f"{results[(n, d)].legit_pct_during_attack:.1f}" for d in defenses]
        for n in counts
    ]
    return "Fig. 11 — client throughput (%) vs number of attackers\n" + render_table(
        ["# attackers", "honeypot", "pushback", "none"], rows
    )


def policies(
    scale: str = "default", telemetry=None, jobs=None, scheduler=None, stream=None
) -> str:
    """Capture-rate curves per adversary policy (beyond the paper).

    Runs every :data:`~repro.traffic.policies.POLICY_NAMES` policy
    (plus a reflection/amplification workload) on the honeypot defense
    at the same scale, and tabulates the cumulative fraction of
    bots/reflectors captured over time since attack start — the
    adaptive-adversary companion to the paper's Figs. 10/11.
    """
    base = _scenario_base(scale, scheduler)
    n_amp = max(2, base.n_attackers // 5)
    points = {
        "continuous": base,
        "onoff": replace(base, attacker_policy="onoff", t_on=5.0, t_off=5.0),
        "follower": replace(base, attacker_policy="follower"),
        "aware": replace(base, attacker_policy="aware"),
        "probing": replace(base, attacker_policy="probing"),
        "churn": replace(base, attacker_policy="churn"),
        "reflection": replace(
            base, attacker_policy="reflection", n_amplifiers=n_amp
        ),
    }
    results = run_many(
        points,
        jobs=jobs,
        telemetry=telemetry,
        instrument=lambda name: telemetry is not None,
        stream=stream,
    )
    horizon = base.attack_end - base.attack_start
    steps = [horizon * i / 8.0 for i in range(1, 9)]
    rows = []
    for name, res in results.items():
        # Reflection captures reflectors (the spoofed signature points
        # there); every other policy captures the bots themselves.
        denom = max(
            res.params.n_amplifiers if name == "reflection" else res.params.n_attackers,
            1,
        )
        times = sorted(res.capture_times.values())
        rows.append(
            [name]
            + [
                f"{100.0 * sum(1 for ct in times if ct <= t) / denom:.0f}"
                for t in steps
            ]
            + [f"{res.legit_pct_during_attack:.1f}", res.false_captures]
        )
    lines = [
        "Adversary policies — cumulative capture rate (%) vs time since "
        f"attack start, attack window {horizon:.0f} s",
        render_table(
            ["policy"] + [f"{t:.0f}s" for t in steps] + ["legit%", "false"],
            rows,
        ),
    ]
    refl = results["reflection"]
    traced = sum(len(v) for v in refl.traced_sources.values())
    lines.append(
        f"reflection: {refl.reflector_captures}/{len(refl.amplifier_ids)} "
        f"reflectors captured; stage-two trigger logs traced {traced} "
        f"source(s) behind them"
    )
    if telemetry is not None:
        telemetry.extra["policies"] = {
            name: {
                "capture_times": {str(k): v for k, v in r.capture_times.items()},
                "legit_pct_during_attack": r.legit_pct_during_attack,
                "false_captures": r.false_captures,
                "reflector_captures": r.reflector_captures,
            }
            for name, r in results.items()
        }
    return "\n".join(lines)


FIGURES: Dict[str, Callable[[str], str]] = {
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "policies": policies,
}


def figure(
    name: str,
    scale: str = "default",
    telemetry=None,
    jobs=None,
    scheduler=None,
    stream=None,
) -> str:
    """Regenerate one figure by name ('fig5' ... 'fig11').

    ``telemetry`` (a :class:`repro.obs.Telemetry` or None) instruments
    the figure's runs; figures without a simulation component accept
    and ignore it.  ``jobs`` fans the figure's independent scenario
    runs out over a :mod:`repro.parallel` worker pool (default:
    ``$REPRO_JOBS`` or serial); results are identical either way.
    ``scheduler`` selects the engine's event-scheduler policy ("heap",
    "calendar", "auto"); the results are identical under all policies —
    only wall-clock time changes.  ``stream`` (a ``{"dir", "interval",
    "wall_cap"}`` dict) arms one live telemetry stream per scenario run
    under ``dir`` — watch them with ``repro watch DIR``; figures
    without a simulation component accept and ignore it.
    """
    try:
        fn = FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        ) from None
    return fn(
        scale, telemetry=telemetry, jobs=jobs, scheduler=scheduler, stream=stream
    )
