"""Standard experiment scenarios (Section 8.3 / Fig. 9).

The paper's main simulation setup: a tree topology with five servers
behind a 10 Mb/s bottleneck; legitimate clients and attackers on the
leaves, all sending CBR traffic toward the servers; legitimate load
held at ~90% of the bottleneck; attacks active during the middle of
the run.  Three defense configurations run on identical workloads:
no defense, ACC/Pushback, and honeypot back-propagation.

``DEFAULT_SCALE`` shrinks the paper's 1000-leaf, 1000-second runs to
100 leaves / 100 seconds so a full figure regenerates in minutes on a
laptop; ``paper_scale()`` restores the full-size settings.  The
legitimate:attack:bottleneck rate ratios are identical at both scales,
which is what the reported shapes depend on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Literal, Optional, Tuple

from ..backprop.intraas import IntraASConfig
from ..crypto.hashchain import HashChain
from ..defense.base import Defense, NoDefense
from ..defense.honeypot_backprop import HoneypotBackpropDefense
from ..defense.pushback_defense import PushbackDefense
from ..honeypots.roaming import RoamingServerPool
from ..honeypots.schedule import RoamingSchedule
from ..honeypots.subscription import SubscriptionService
from ..pushback.protocol import PushbackConfig
from ..sim import shard as shard_mod
from ..sim.engine import Simulator
from ..sim.monitor import ThroughputMonitor, mean_over_window
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..topology.tree import (
    TreeParams,
    assign_roles,
    build_tree_topology,
    split_amplifiers,
    subtree_partition,
)
from ..traffic.amplifier import AmplifierApp
from ..traffic.client import RoamingClientApp, StaticClientApp
from ..traffic.policies import NULL_PROBES, BotEnv, DefenseProbes, make_policy

__all__ = [
    "TreeScenarioParams",
    "TreeScenarioResult",
    "resolve_shards",
    "run_tree_scenario",
    "paper_scale",
    "PARAMETER_TABLE",
    "DefenseName",
]

DefenseName = Literal["none", "pushback", "honeypot"]


def resolve_shards(value: Optional[int] = None) -> int:
    """Requested shard count: explicit value, else ``$REPRO_SHARDS``,
    else 0 (serial).  Mirrors how ``--jobs``/``$REPRO_JOBS`` resolve."""
    if value is not None:
        return int(value)
    env = os.environ.get("REPRO_SHARDS")
    return int(env) if env else 0


@dataclass(frozen=True)
class TreeScenarioParams:
    """All knobs of the standard tree scenario (Fig. 9's table)."""

    # Topology
    n_leaves: int = 100
    n_servers: int = 5
    bottleneck_bw: float = 10e6
    # Roaming honeypots
    n_active: int = 3
    epoch_len: float = 10.0
    # Guard bands: delta bounds clock skew; gamma must cover the worst
    # client->server latency *including bottleneck queueing* so that
    # in-flight legitimate packets never land inside a honeypot window.
    delta: float = 0.02
    gamma: float = 0.25
    # Attack
    n_attackers: int = 25
    attacker_rate: float = 1.0e6
    placement: Literal["close", "far", "even"] = "even"
    t_on: Optional[float] = None
    t_off: Optional[float] = None
    # Adversary policy (see repro.traffic.policies): "continuous",
    # "onoff", "follower", "aware", "probing", "churn", "reflection".
    attacker_policy: str = "continuous"
    # Reflection/amplification workload: amplifier leaves that bounce
    # spoofed triggers toward the victim at gain ``amplification``.
    n_amplifiers: int = 0
    amplification: float = 5.0
    # Policy knobs: follower reaction delay, aware-backoff window,
    # probing cadence, churn online/offline dwell means.
    d_follow: float = 1.0
    aware_backoff: float = 8.0
    probe_interval: float = 2.0
    churn_on: float = 6.0
    churn_off: float = 3.0
    # Legitimate load: fraction of the bottleneck filled by clients.
    legit_load: float = 0.9
    packet_size: int = 1000
    # CBR inter-packet jitter; breaks drop-tail phase locking between
    # perfectly periodic flows (ns-2 CBR's random_ flag).
    jitter: float = 0.1
    # Timeline
    duration: float = 100.0
    attack_start: float = 10.0
    attack_end: float = 90.0
    # Defense
    defense: DefenseName = "honeypot"
    # Honeypot back-propagation knobs (see IntraASConfig).
    trigger_threshold: int = 2
    cancel_lead: float = 0.3
    seed: int = 0
    # Event-scheduler policy: "heap", "calendar", "auto", or None for
    # the engine default (REPRO_SCHEDULER env var, else auto).  The
    # journal is byte-identical across policies (see repro.sim.engine).
    scheduler: Optional[str] = None
    # Conservative sharded execution (repro.sim.shard).  ``shards`` is
    # the requested shard count (0/1 = serial); degenerate cuts fall
    # back to serial automatically.  ``shard_exec`` picks the mode:
    # "inline" (single process, exact serial dispatch order, every
    # scenario) or "processes" (forked workers, real parallelism,
    # restricted to defense-free continuous workloads with per-host
    # RNG).  The journal is byte-identical across all of these.
    shards: int = 0
    shard_exec: str = "inline"
    # RNG stream discipline: "shared" (legacy — one stream for all
    # clients, one for all attackers) or "per-host" (independent
    # derived stream per leaf, plus an attacker start stagger within
    # one packet interval).  Per-host streams make every host's draw
    # sequence independent of event interleaving across shards, which
    # fork-mode execution requires; they change the sampled workload,
    # so the two disciplines are distinct (journal-stable) scenarios.
    rng_discipline: str = "shared"

    @property
    def n_clients(self) -> int:
        return self.n_leaves - self.n_attackers - self.n_amplifiers

    @property
    def client_rate(self) -> float:
        """Per-client rate that keeps total legit load at the target."""
        if self.n_clients == 0:
            return 0.0
        return self.legit_load * self.bottleneck_bw / self.n_clients

    @property
    def honeypot_probability(self) -> float:
        return (self.n_servers - self.n_active) / self.n_servers


def paper_scale(params: TreeScenarioParams) -> TreeScenarioParams:
    """The paper's full-scale settings (1000 leaves, 1000 s runs)."""
    return replace(
        params,
        n_leaves=1000,
        duration=1000.0,
        attack_start=50.0,
        attack_end=950.0,
    )


# Fig. 9: the parameter space the paper studies.
PARAMETER_TABLE: List[Tuple[str, str, str]] = [
    ("attacker location", "close / evenly distributed / far", "evenly distributed"),
    ("number of attackers", "5, 10, 25, 50", "25"),
    ("attack rate per attacker", "0.1, 0.25, 0.5, 1.0 Mb/s", "1.0 Mb/s"),
    ("legitimate load", "~90% of bottleneck (total)", "0.9"),
    ("servers (N, k)", "N=5, k=3  =>  p = 0.4", "N=5, k=3"),
    ("epoch length m", "10 s", "10 s"),
    ("defense", "none / Pushback / honeypot back-propagation", "—"),
]


@dataclass
class TreeScenarioResult:
    """Everything a figure needs from one run."""

    params: TreeScenarioParams
    times: List[float]
    legit_pct: List[float]
    attack_pct: List[float]
    legit_pct_during_attack: float
    defense_stats: Dict[str, Any]
    capture_times: Dict[int, float] = field(default_factory=dict)
    false_captures: int = 0
    attacker_ids: List[int] = field(default_factory=list)
    client_ids: List[int] = field(default_factory=list)
    events_processed: int = 0
    # Reflection workloads: amplifier leaves, how many of the captures
    # hit reflectors, and the stage-two traceback (captured reflector ->
    # true trigger sources from its log).
    amplifier_ids: List[int] = field(default_factory=list)
    reflector_captures: int = 0
    traced_sources: Dict[int, List[int]] = field(default_factory=dict)


def _build_defense(
    params: TreeScenarioParams,
    net: Network,
    topo,
    rngs: RngRegistry,
) -> Tuple[Defense, Optional[RoamingServerPool], Optional[SubscriptionService]]:
    if params.defense == "none":
        return NoDefense(), None, None
    if params.defense == "pushback":
        return PushbackDefense(PushbackConfig()), None, None
    if params.defense == "honeypot":
        n_epochs = int(params.duration / params.epoch_len) + 3
        chain = HashChain(
            n_epochs + 64,
            anchor=rngs.stream("hashchain").bytes(32),
        )
        schedule = RoamingSchedule(
            params.n_servers, params.n_active, params.epoch_len, chain
        )
        servers = [net.nodes[sid] for sid in topo.server_ids]
        pool = RoamingServerPool(
            net.sim, servers, schedule, delta=params.delta, gamma=params.gamma
        )
        service = SubscriptionService(schedule, chain)
        defense = HoneypotBackpropDefense(
            pool,
            net.nodes[topo.server_router_id],
            IntraASConfig(
                trigger_threshold=params.trigger_threshold,
                cancel_lead=params.cancel_lead,
            ),
        )
        return defense, pool, service
    raise ValueError(f"unknown defense {params.defense!r}")


def run_tree_scenario(
    params: TreeScenarioParams,
    telemetry=None,
    stream=None,
    profile=False,
    shard_config=None,
) -> TreeScenarioResult:
    """Build, run, and measure one tree-scenario simulation.

    ``telemetry`` (a :class:`repro.obs.Telemetry` or None) turns on the
    unified observability layer: the defense emits lifecycle spans, the
    monitor counts per-class deliveries, the engine self-profiles, and
    the network's counters are snapshotted into the registry after the
    run.  With None (the default) nothing is instrumented.

    ``stream`` (a :class:`repro.obs.stream.StreamConfig` or None) adds
    live in-run snapshots: a :class:`~repro.obs.stream.TelemetryStreamer`
    is armed on the simulator and fed the defense's live gauges plus a
    run-progress source.  Streaming only reads — the causal journal is
    byte-identical with or without it.  A bare ``stream`` implies a
    private :class:`~repro.obs.Telemetry` so rates can be computed.

    ``profile=True`` (requires ``telemetry``) enables the engine's
    dimensional attribution: per-event wall-time charged to callback
    kind × module × per-subtree shard label
    (:func:`~repro.topology.tree.subtree_partition`).  Attribution only
    reads — journals stay byte-identical with profiling on or off.
    """
    if params.shard_exec not in ("inline", "processes"):
        raise ValueError(f"unknown shard_exec {params.shard_exec!r}")
    if params.rng_discipline not in ("shared", "per-host"):
        raise ValueError(f"unknown rng_discipline {params.rng_discipline!r}")
    if params.shards < 0:
        raise ValueError(f"shards must be >= 0 (got {params.shards})")
    # shards=0 defers to $REPRO_SHARDS (shards=1 is an explicit serial
    # request that the environment cannot override).
    shards = params.shards if params.shards else resolve_shards()
    if shards > 1 and params.shard_exec == "processes":
        # Fork mode runs each shard's callbacks on a private copy of
        # the object graph, so it is restricted to workloads whose
        # every scheduled callback resolves to one shard and whose RNG
        # draws are independent of cross-shard interleaving.
        blockers = []
        if params.defense != "none":
            blockers.append(f"defense={params.defense!r} (need 'none')")
        if params.attacker_policy != "continuous":
            blockers.append(
                f"attacker_policy={params.attacker_policy!r} (need 'continuous')"
            )
        if params.n_amplifiers:
            blockers.append(f"n_amplifiers={params.n_amplifiers} (need 0)")
        if params.rng_discipline != "per-host":
            blockers.append(
                f"rng_discipline={params.rng_discipline!r} (need 'per-host')"
            )
        if stream is not None:
            blockers.append("live streaming (per-process)")
        if profile:
            blockers.append("profile dimensions (per-process)")
        if blockers:
            raise ValueError(
                "shard_exec='processes' does not support: " + "; ".join(blockers)
            )
    if not 0 <= params.n_attackers <= params.n_leaves:
        raise ValueError("n_attackers out of range")
    if params.n_attackers + params.n_amplifiers > params.n_leaves:
        raise ValueError("n_attackers + n_amplifiers exceeds n_leaves")
    if not 0 < params.attack_start < params.attack_end <= params.duration:
        raise ValueError("need 0 < attack_start < attack_end <= duration")
    if params.attacker_policy == "reflection" and params.n_amplifiers < 1:
        raise ValueError("reflection policy needs n_amplifiers >= 1")
    # Fail fast on an unknown policy name, before building anything.
    policy = make_policy(
        params.attacker_policy,
        t_on=params.t_on,
        t_off=params.t_off,
        d_follow=params.d_follow,
        aware_backoff=params.aware_backoff,
        probe_interval=params.probe_interval,
        churn_on=params.churn_on,
        churn_off=params.churn_off,
        amplification=params.amplification,
    )
    rngs = RngRegistry(params.seed)

    tree_params = TreeParams(
        n_leaves=params.n_leaves,
        n_servers=params.n_servers,
        bottleneck_bw=params.bottleneck_bw,
    )
    topo = build_tree_topology(tree_params, rngs.stream("topology"))
    # Sharded execution: partition into per-AS subtrees; degenerate
    # cuts (one effective shard / no positive lookahead) fall back to
    # the plain serial loop.
    layout = None
    if shards > 1:
        layout = shard_mod.shard_layout(
            topo.graph, subtree_partition(topo), shards, config=shard_config
        )
        if layout.n_groups < 2 or not (layout.lookahead or 0.0) > 0.0:
            layout = None
    if layout is not None and params.shard_exec == "inline":
        if profile:
            raise ValueError(
                "profile dimensions are per-event-loop; run without shards"
            )
        sim = shard_mod.ShardedSimulator(layout, scheduler=params.scheduler)
    else:
        sim = Simulator(scheduler=params.scheduler)
    net = Network.from_graph(topo.graph, sim=sim)

    attacker_ids, client_ids = assign_roles(
        topo, params.n_attackers, params.placement, rngs.stream("roles")
    )
    amplifier_ids: List[int] = []
    if params.n_amplifiers:
        # A fresh named stream and a draw-free n==0 path keep seed
        # scenarios byte-identical to pre-amplifier journals.
        amplifier_ids, client_ids = split_amplifiers(
            client_ids, params.n_amplifiers, rngs.stream("amplifiers")
        )
    # Amplifier leaves are traffic sinks (triggers are routed to them),
    # so they join the servers in the routing targets.
    net.build_routes(targets=list(topo.server_ids) + amplifier_ids)
    if telemetry is not None:
        telemetry.bind(net.sim)
        if profile:
            telemetry.profiler.enable_dimensions(
                site_of=subtree_partition(topo).get
            )
    streamer = None
    if stream is not None:
        from ..obs import Telemetry
        from ..obs.stream import TelemetryStreamer

        hub = telemetry
        if hub is None:
            # Streaming needs a registry/profiler to report rates from;
            # a private hub instruments the run without changing what
            # the caller receives.
            hub = Telemetry()
            hub.bind(net.sim)
        streamer = TelemetryStreamer(hub, stream).attach(net.sim)
        hub.streamer = streamer
    defense, pool, service = _build_defense(params, net, topo, rngs)
    defense.use_telemetry(telemetry)
    defense.attach(net)
    if streamer is not None:
        if isinstance(defense, HoneypotBackpropDefense):
            import networkx as nx

            # Hop depth of every router from the server access router:
            # the frontier gauge reports how deep back-propagation has
            # pushed toward the attackers.
            depths = nx.single_source_shortest_path_length(
                topo.graph, topo.server_router_id
            )
            defense.frontier_depth_of = depths.get
        sim = net.sim

        def _progress() -> Dict[str, Any]:
            return {
                "defense": params.defense,
                "duration": params.duration,
                "pct_complete": round(100.0 * sim.now / params.duration, 2),
                "attackers_total": params.n_attackers,
                "seed": params.seed,
            }

        streamer.add_source("progress", _progress)
        streamer.add_source("defense", defense.stream_sample)

    # --- Amplifiers (reflection workload) ------------------------------
    journal = telemetry.journal if telemetry is not None else None
    amplifiers: List[AmplifierApp] = []
    for leaf in amplifier_ids:
        amplifiers.append(
            AmplifierApp(
                net.sim,
                net.nodes[leaf],
                amplification=params.amplification,
                journal=journal,
            )
        )
    if isinstance(defense, HoneypotBackpropDefense) and amplifiers:
        amp_by_addr = {app.host.addr: app for app in amplifiers}
        defense.known_reflectors = frozenset(amp_by_addr)
        if journal is not None:
            # Stage two of the traceback: when a reflector is captured,
            # its trigger log names the true sources behind it.
            def _stage_two(record) -> None:
                app = amp_by_addr.get(record.host_addr)
                if app is not None:
                    journal.record(
                        "reflector_traceback",
                        reflector=int(record.host_addr),
                        sources=sorted(int(s) for s in app.trigger_sources),
                        triggers=int(app.triggers_received),
                    )

            defense.capture_listeners.append(_stage_two)

    # --- Adaptive-attacker probes --------------------------------------
    probes = NULL_PROBES
    if isinstance(defense, HoneypotBackpropDefense) and pool is not None:
        server_index = {int(addr): i for i, addr in enumerate(topo.server_ids)}
        access_of = topo.access_router_of
        captures = defense.captures

        def _is_server_honeypot(addr: int) -> bool:
            return pool.is_honeypot_now(server_index[int(addr)])

        def _subtree_captured(addr: int) -> bool:
            router = access_of.get(addr)
            for c in captures:
                if c.host_addr == addr or c.access_router_addr == router:
                    return True
            return False

        def _captures_total() -> int:
            return len(captures)

        probes = DefenseProbes(
            is_server_honeypot=_is_server_honeypot,
            subtree_captured=_subtree_captured,
            captures_total=_captures_total,
        )

    # --- Legitimate clients -------------------------------------------
    # "shared" keeps the legacy single client stream; "per-host" derives
    # an independent stream per leaf so a host's draw sequence does not
    # depend on how events interleave across shards.
    per_host = params.rng_discipline == "per-host"
    client_rng = None if per_host else rngs.stream("clients")
    clients = []
    for leaf in client_ids:
        host = net.nodes[leaf]
        rng = rngs.stream(f"client.{leaf}") if per_host else client_rng
        if service is not None:
            sub = service.subscribe(0.0, "high")
            app = RoamingClientApp(
                net.sim,
                host,
                sub,
                topo.server_ids,
                params.client_rate,
                rng,
                params.packet_size,
                jitter=params.jitter,
            )
        else:
            app = StaticClientApp(
                net.sim,
                host,
                topo.server_ids,
                params.client_rate,
                rng,
                params.packet_size,
                jitter=params.jitter,
            )
        # Stagger client start within one packet interval to avoid
        # phase-locked bursts at t=0.
        app.start(at=float(rng.uniform(0.0, 0.2)))
        clients.append(app)

    # --- Attackers -----------------------------------------------------
    # ``attackers`` is the seed per-bot stream (target/spoof/phase draws
    # in the legacy order); ``attacker-policy`` is a separate stream for
    # policy-level decisions, so adaptive policies never perturb it.
    attack_rng = None if per_host else rngs.stream("attackers")
    policy_rng = None if per_host else rngs.stream("attacker-policy")
    server_addrs = tuple(int(s) for s in topo.server_ids)
    amplifier_addrs = tuple(int(a) for a in amplifier_ids)
    # Per-host attack starts stagger within one packet interval: with a
    # common start instant, equal-depth zombies in different subtrees
    # produce exactly tied arrivals, and tie order is the one thing a
    # distributed run cannot reproduce.  The stagger is at most one
    # inter-packet gap, so attack timing is unchanged at workload scale.
    stagger_span = (
        params.packet_size * 8.0 / params.attacker_rate
        if params.attacker_rate > 0
        else 0.0
    )
    zombies = []
    for leaf in attacker_ids:
        if per_host:
            bot_rng = rngs.stream(f"attacker.{leaf}")
            bot_policy_rng = rngs.stream(f"attacker-policy.{leaf}")
        else:
            bot_rng, bot_policy_rng = attack_rng, policy_rng
        env = BotEnv(
            sim=net.sim,
            host=net.nodes[leaf],
            servers=server_addrs,
            rate_bps=params.attacker_rate,
            packet_size=params.packet_size,
            jitter=params.jitter,
            rng=bot_rng,
            policy_rng=bot_policy_rng,
            probes=probes,
            amplifiers=amplifier_addrs,
            journal=journal,
        )
        z = policy.spawn(env)
        start_at = params.attack_start
        if per_host:
            start_at += float(bot_rng.uniform(0.0, stagger_span))
        z.start(at=start_at)
        net.sim.schedule_at(params.attack_end, z.stop)
        zombies.append(z)

    # --- Measurement ---------------------------------------------------
    def classify(pkt):
        if pkt.flow and pkt.flow[0] == "client":
            return "legit"
        if pkt.flow and pkt.flow[0] == "attack":
            return "attack"
        return None

    servers = [net.nodes[sid] for sid in topo.server_ids]
    monitor = ThroughputMonitor(
        net.sim,
        servers,
        classify,
        interval=1.0,
        registry=telemetry.registry if telemetry is not None else None,
    )
    monitor.start()

    shard_stats: Optional[Dict[str, Any]] = None
    try:
        if layout is not None and params.shard_exec == "processes":
            shard_stats = shard_mod.run_forked(net, layout, params.duration)
        else:
            net.run(until=params.duration)
    except BaseException:
        if streamer is not None:
            streamer.close()
        raise

    legit_pct = monitor.percent_of("legit", params.bottleneck_bw)
    attack_pct = monitor.percent_of("attack", params.bottleneck_bw)
    during = mean_over_window(
        monitor.times, legit_pct, params.attack_start, params.attack_end
    )

    capture_times: Dict[int, float] = {}
    false_caps = 0
    reflector_captures = 0
    traced_sources: Dict[int, List[int]] = {}
    if isinstance(defense, HoneypotBackpropDefense):
        capture_times = defense.capture_times(params.attack_start)
        # Captured reflectors are correct defense behavior (the spoofed
        # signature points at them), not false captures.
        false_caps = len(
            defense.false_captures(list(attacker_ids) + list(amplifier_ids))
        )
        if amplifiers:
            amp_apps = {app.host.addr: app for app in amplifiers}
            for c in defense.captures:
                app = amp_apps.get(c.host_addr)
                if app is not None:
                    reflector_captures += 1
                    traced_sources[int(c.host_addr)] = sorted(
                        int(s) for s in app.trigger_sources
                    )

    if telemetry is not None:
        telemetry.snapshot_network(net)
        if shard_stats is not None:
            telemetry.extra.setdefault("shard_exec", shard_stats)
        if isinstance(net.sim, shard_mod.ShardedSimulator):
            telemetry.extra.setdefault("shard_barrier", net.sim.barrier.stats())
        telemetry.record_stats(defense.stats(), prefix=f"{defense.name}_")
        telemetry.extra.setdefault("throughput", monitor.to_dict())
        entry = {
            "legit_pct_during_attack": during,
            "captures": len(capture_times),
            "false_captures": false_caps,
        }
        if amplifier_ids:
            entry["reflector_captures"] = reflector_captures
            entry["traced_sources"] = sum(len(v) for v in traced_sources.values())
        telemetry.extra.setdefault("scenario", {})[params.defense] = entry

    if streamer is not None:
        # Final snapshot *after* the post-run registry fold, so the last
        # stream record (and the textfile) carries the complete totals.
        if telemetry is None:
            streamer.telemetry.snapshot_network(net)
        streamer.close()

    return TreeScenarioResult(
        params=params,
        times=list(monitor.times),
        legit_pct=legit_pct,
        attack_pct=attack_pct,
        legit_pct_during_attack=during,
        defense_stats=defense.stats(),
        capture_times=capture_times,
        false_captures=false_caps,
        attacker_ids=list(attacker_ids),
        client_ids=list(client_ids),
        events_processed=net.sim.events_processed,
        amplifier_ids=list(amplifier_ids),
        reflector_captures=reflector_captures,
        traced_sources=traced_sources,
    )
