"""Standard experiment scenarios (Section 8.3 / Fig. 9).

The paper's main simulation setup: a tree topology with five servers
behind a 10 Mb/s bottleneck; legitimate clients and attackers on the
leaves, all sending CBR traffic toward the servers; legitimate load
held at ~90% of the bottleneck; attacks active during the middle of
the run.  Three defense configurations run on identical workloads:
no defense, ACC/Pushback, and honeypot back-propagation.

``DEFAULT_SCALE`` shrinks the paper's 1000-leaf, 1000-second runs to
100 leaves / 100 seconds so a full figure regenerates in minutes on a
laptop; ``paper_scale()`` restores the full-size settings.  The
legitimate:attack:bottleneck rate ratios are identical at both scales,
which is what the reported shapes depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Literal, Optional, Tuple

from ..backprop.intraas import IntraASConfig
from ..crypto.hashchain import HashChain
from ..defense.base import Defense, NoDefense
from ..defense.honeypot_backprop import HoneypotBackpropDefense
from ..defense.pushback_defense import PushbackDefense
from ..honeypots.roaming import RoamingServerPool
from ..honeypots.schedule import RoamingSchedule
from ..honeypots.subscription import SubscriptionService
from ..pushback.protocol import PushbackConfig
from ..sim.engine import Simulator
from ..sim.monitor import ThroughputMonitor, mean_over_window
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..topology.tree import TreeParams, assign_roles, build_tree_topology
from ..traffic.attacker import AttackHost
from ..traffic.client import RoamingClientApp, StaticClientApp

__all__ = [
    "TreeScenarioParams",
    "TreeScenarioResult",
    "run_tree_scenario",
    "paper_scale",
    "PARAMETER_TABLE",
    "DefenseName",
]

DefenseName = Literal["none", "pushback", "honeypot"]


@dataclass(frozen=True)
class TreeScenarioParams:
    """All knobs of the standard tree scenario (Fig. 9's table)."""

    # Topology
    n_leaves: int = 100
    n_servers: int = 5
    bottleneck_bw: float = 10e6
    # Roaming honeypots
    n_active: int = 3
    epoch_len: float = 10.0
    # Guard bands: delta bounds clock skew; gamma must cover the worst
    # client->server latency *including bottleneck queueing* so that
    # in-flight legitimate packets never land inside a honeypot window.
    delta: float = 0.02
    gamma: float = 0.25
    # Attack
    n_attackers: int = 25
    attacker_rate: float = 1.0e6
    placement: Literal["close", "far", "even"] = "even"
    t_on: Optional[float] = None
    t_off: Optional[float] = None
    # Legitimate load: fraction of the bottleneck filled by clients.
    legit_load: float = 0.9
    packet_size: int = 1000
    # CBR inter-packet jitter; breaks drop-tail phase locking between
    # perfectly periodic flows (ns-2 CBR's random_ flag).
    jitter: float = 0.1
    # Timeline
    duration: float = 100.0
    attack_start: float = 10.0
    attack_end: float = 90.0
    # Defense
    defense: DefenseName = "honeypot"
    # Honeypot back-propagation knobs (see IntraASConfig).
    trigger_threshold: int = 2
    cancel_lead: float = 0.3
    seed: int = 0
    # Event-scheduler policy: "heap", "calendar", "auto", or None for
    # the engine default (REPRO_SCHEDULER env var, else auto).  The
    # journal is byte-identical across policies (see repro.sim.engine).
    scheduler: Optional[str] = None

    @property
    def n_clients(self) -> int:
        return self.n_leaves - self.n_attackers

    @property
    def client_rate(self) -> float:
        """Per-client rate that keeps total legit load at the target."""
        if self.n_clients == 0:
            return 0.0
        return self.legit_load * self.bottleneck_bw / self.n_clients

    @property
    def honeypot_probability(self) -> float:
        return (self.n_servers - self.n_active) / self.n_servers


def paper_scale(params: TreeScenarioParams) -> TreeScenarioParams:
    """The paper's full-scale settings (1000 leaves, 1000 s runs)."""
    return replace(
        params,
        n_leaves=1000,
        duration=1000.0,
        attack_start=50.0,
        attack_end=950.0,
    )


# Fig. 9: the parameter space the paper studies.
PARAMETER_TABLE: List[Tuple[str, str, str]] = [
    ("attacker location", "close / evenly distributed / far", "evenly distributed"),
    ("number of attackers", "5, 10, 25, 50", "25"),
    ("attack rate per attacker", "0.1, 0.25, 0.5, 1.0 Mb/s", "1.0 Mb/s"),
    ("legitimate load", "~90% of bottleneck (total)", "0.9"),
    ("servers (N, k)", "N=5, k=3  =>  p = 0.4", "N=5, k=3"),
    ("epoch length m", "10 s", "10 s"),
    ("defense", "none / Pushback / honeypot back-propagation", "—"),
]


@dataclass
class TreeScenarioResult:
    """Everything a figure needs from one run."""

    params: TreeScenarioParams
    times: List[float]
    legit_pct: List[float]
    attack_pct: List[float]
    legit_pct_during_attack: float
    defense_stats: Dict[str, Any]
    capture_times: Dict[int, float] = field(default_factory=dict)
    false_captures: int = 0
    attacker_ids: List[int] = field(default_factory=list)
    client_ids: List[int] = field(default_factory=list)
    events_processed: int = 0


def _build_defense(
    params: TreeScenarioParams,
    net: Network,
    topo,
    rngs: RngRegistry,
) -> Tuple[Defense, Optional[RoamingServerPool], Optional[SubscriptionService]]:
    if params.defense == "none":
        return NoDefense(), None, None
    if params.defense == "pushback":
        return PushbackDefense(PushbackConfig()), None, None
    if params.defense == "honeypot":
        n_epochs = int(params.duration / params.epoch_len) + 3
        chain = HashChain(
            n_epochs + 64,
            anchor=rngs.stream("hashchain").bytes(32),
        )
        schedule = RoamingSchedule(
            params.n_servers, params.n_active, params.epoch_len, chain
        )
        servers = [net.nodes[sid] for sid in topo.server_ids]
        pool = RoamingServerPool(
            net.sim, servers, schedule, delta=params.delta, gamma=params.gamma
        )
        service = SubscriptionService(schedule, chain)
        defense = HoneypotBackpropDefense(
            pool,
            net.nodes[topo.server_router_id],
            IntraASConfig(
                trigger_threshold=params.trigger_threshold,
                cancel_lead=params.cancel_lead,
            ),
        )
        return defense, pool, service
    raise ValueError(f"unknown defense {params.defense!r}")


def run_tree_scenario(
    params: TreeScenarioParams, telemetry=None, stream=None
) -> TreeScenarioResult:
    """Build, run, and measure one tree-scenario simulation.

    ``telemetry`` (a :class:`repro.obs.Telemetry` or None) turns on the
    unified observability layer: the defense emits lifecycle spans, the
    monitor counts per-class deliveries, the engine self-profiles, and
    the network's counters are snapshotted into the registry after the
    run.  With None (the default) nothing is instrumented.

    ``stream`` (a :class:`repro.obs.stream.StreamConfig` or None) adds
    live in-run snapshots: a :class:`~repro.obs.stream.TelemetryStreamer`
    is armed on the simulator and fed the defense's live gauges plus a
    run-progress source.  Streaming only reads — the causal journal is
    byte-identical with or without it.  A bare ``stream`` implies a
    private :class:`~repro.obs.Telemetry` so rates can be computed.
    """
    if not 0 <= params.n_attackers <= params.n_leaves:
        raise ValueError("n_attackers out of range")
    if not 0 < params.attack_start < params.attack_end <= params.duration:
        raise ValueError("need 0 < attack_start < attack_end <= duration")
    rngs = RngRegistry(params.seed)

    tree_params = TreeParams(
        n_leaves=params.n_leaves,
        n_servers=params.n_servers,
        bottleneck_bw=params.bottleneck_bw,
    )
    topo = build_tree_topology(tree_params, rngs.stream("topology"))
    net = Network.from_graph(topo.graph, sim=Simulator(scheduler=params.scheduler))
    net.build_routes(targets=topo.server_ids)

    attacker_ids, client_ids = assign_roles(
        topo, params.n_attackers, params.placement, rngs.stream("roles")
    )
    if telemetry is not None:
        telemetry.bind(net.sim)
    streamer = None
    if stream is not None:
        from ..obs import Telemetry
        from ..obs.stream import TelemetryStreamer

        hub = telemetry
        if hub is None:
            # Streaming needs a registry/profiler to report rates from;
            # a private hub instruments the run without changing what
            # the caller receives.
            hub = Telemetry()
            hub.bind(net.sim)
        streamer = TelemetryStreamer(hub, stream).attach(net.sim)
        hub.streamer = streamer
    defense, pool, service = _build_defense(params, net, topo, rngs)
    defense.use_telemetry(telemetry)
    defense.attach(net)
    if streamer is not None:
        if isinstance(defense, HoneypotBackpropDefense):
            import networkx as nx

            # Hop depth of every router from the server access router:
            # the frontier gauge reports how deep back-propagation has
            # pushed toward the attackers.
            depths = nx.single_source_shortest_path_length(
                topo.graph, topo.server_router_id
            )
            defense.frontier_depth_of = depths.get
        sim = net.sim

        def _progress() -> Dict[str, Any]:
            return {
                "defense": params.defense,
                "duration": params.duration,
                "pct_complete": round(100.0 * sim.now / params.duration, 2),
                "attackers_total": params.n_attackers,
                "seed": params.seed,
            }

        streamer.add_source("progress", _progress)
        streamer.add_source("defense", defense.stream_sample)

    # --- Legitimate clients -------------------------------------------
    client_rng = rngs.stream("clients")
    clients = []
    for leaf in client_ids:
        host = net.nodes[leaf]
        if service is not None:
            sub = service.subscribe(0.0, "high")
            app = RoamingClientApp(
                net.sim,
                host,
                sub,
                topo.server_ids,
                params.client_rate,
                client_rng,
                params.packet_size,
                jitter=params.jitter,
            )
        else:
            app = StaticClientApp(
                net.sim,
                host,
                topo.server_ids,
                params.client_rate,
                client_rng,
                params.packet_size,
                jitter=params.jitter,
            )
        # Stagger client start within one packet interval to avoid
        # phase-locked bursts at t=0.
        app.start(at=float(client_rng.uniform(0.0, 0.2)))
        clients.append(app)

    # --- Attackers -----------------------------------------------------
    attack_rng = rngs.stream("attackers")
    zombies = []
    for leaf in attacker_ids:
        host = net.nodes[leaf]
        z = AttackHost(
            net.sim,
            host,
            topo.server_ids,
            params.attacker_rate,
            attack_rng,
            params.packet_size,
            t_on=params.t_on,
            t_off=params.t_off,
            jitter=params.jitter,
        )
        z.start(at=params.attack_start)
        net.sim.schedule_at(params.attack_end, z.stop)
        zombies.append(z)

    # --- Measurement ---------------------------------------------------
    def classify(pkt):
        if pkt.flow and pkt.flow[0] == "client":
            return "legit"
        if pkt.flow and pkt.flow[0] == "attack":
            return "attack"
        return None

    servers = [net.nodes[sid] for sid in topo.server_ids]
    monitor = ThroughputMonitor(
        net.sim,
        servers,
        classify,
        interval=1.0,
        registry=telemetry.registry if telemetry is not None else None,
    )
    monitor.start()

    try:
        net.run(until=params.duration)
    except BaseException:
        if streamer is not None:
            streamer.close()
        raise

    legit_pct = monitor.percent_of("legit", params.bottleneck_bw)
    attack_pct = monitor.percent_of("attack", params.bottleneck_bw)
    during = mean_over_window(
        monitor.times, legit_pct, params.attack_start, params.attack_end
    )

    capture_times: Dict[int, float] = {}
    false_caps = 0
    if isinstance(defense, HoneypotBackpropDefense):
        capture_times = defense.capture_times(params.attack_start)
        false_caps = len(defense.false_captures(attacker_ids))

    if telemetry is not None:
        telemetry.snapshot_network(net)
        telemetry.record_stats(defense.stats(), prefix=f"{defense.name}_")
        telemetry.extra.setdefault("throughput", monitor.to_dict())
        telemetry.extra.setdefault("scenario", {})[params.defense] = {
            "legit_pct_during_attack": during,
            "captures": len(capture_times),
            "false_captures": false_caps,
        }

    if streamer is not None:
        # Final snapshot *after* the post-run registry fold, so the last
        # stream record (and the textfile) carries the complete totals.
        if telemetry is None:
            streamer.telemetry.snapshot_network(net)
        streamer.close()

    return TreeScenarioResult(
        params=params,
        times=list(monitor.times),
        legit_pct=legit_pct,
        attack_pct=attack_pct,
        legit_pct_during_attack=during,
        defense_stats=defense.stats(),
        capture_times=capture_times,
        false_captures=false_caps,
        attacker_ids=list(attacker_ids),
        client_ids=list(client_ids),
        events_processed=net.sim.events_processed,
    )
