"""Experiment running utilities: replication, sweeps, text tables.

Benchmarks and examples print the same rows/series the paper reports;
these helpers keep that rendering consistent.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict, Iterable, List, Sequence

import numpy as np

from .scenarios import TreeScenarioParams, TreeScenarioResult, run_tree_scenario

__all__ = [
    "confidence_interval",
    "render_series",
    "render_table",
    "replicate_scenario",
    "result_to_dict",
    "summarize",
    "sweep_scenario",
]


def result_to_dict(result: TreeScenarioResult) -> Dict[str, Any]:
    """A :class:`TreeScenarioResult` as a JSON-ready artifact payload."""
    return {
        "params": asdict(result.params),
        "times": list(result.times),
        "legit_pct": list(result.legit_pct),
        "attack_pct": list(result.attack_pct),
        "legit_pct_during_attack": result.legit_pct_during_attack,
        "defense_stats": dict(result.defense_stats),
        "capture_times": {str(k): v for k, v in result.capture_times.items()},
        "false_captures": result.false_captures,
        "events_processed": result.events_processed,
    }


def replicate_scenario(
    params: TreeScenarioParams, seeds: Sequence[int]
) -> List[TreeScenarioResult]:
    """Run the same scenario under several seeds."""
    return [run_tree_scenario(replace(params, seed=s)) for s in seeds]


def sweep_scenario(
    base: TreeScenarioParams,
    field_name: str,
    values: Iterable[Any],
    seeds: Sequence[int] = (0,),
) -> Dict[Any, List[TreeScenarioResult]]:
    """Sweep one parameter, replicating each point over ``seeds``."""
    out: Dict[Any, List[TreeScenarioResult]] = {}
    for v in values:
        params = replace(base, **{field_name: v})
        out[v] = replicate_scenario(params, seeds)
    return out


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / max of a metric across replications."""
    if not values:
        return {"mean": float("nan"), "std": float("nan"), "min": float("nan"), "max": float("nan"), "n": 0}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": len(arr),
    }


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple:
    """(low, high) t-based confidence interval on the mean.

    Falls back to the normal quantile when scipy is unavailable;
    returns (mean, mean) for a single sample.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1) (got {confidence})")
    if not values:
        raise ValueError("need at least one sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    n = len(arr)
    if n == 1:
        return (mean, mean)
    sem = float(arr.std(ddof=1)) / np.sqrt(n)
    try:
        from scipy import stats

        t = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        t = 1.96
    return (mean - t * sem, mean + t * sem)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with aligned columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    label: str, xs: Sequence[float], ys: Sequence[float], unit: str = ""
) -> str:
    """One named (x, y) series as compact text."""
    pairs = "  ".join(f"{x:g}:{y:.2f}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label}{suffix}: {pairs}"


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
