"""Experiment running utilities: replication, sweeps, text tables.

Benchmarks and examples print the same rows/series the paper reports;
these helpers keep that rendering consistent.

Replication and sweeps run through :mod:`repro.parallel` when asked
(``jobs`` argument, ``--jobs`` on the CLI, or ``$REPRO_JOBS``): tasks
carry their own seed, so serial and N-worker runs produce identical
results; a :class:`~repro.parallel.SweepCheckpoint` resumes a killed
sweep with exactly the missing tasks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..parallel import (
    PoolConfig,
    PoolReport,
    SweepCheckpoint,
    Task,
    absorb_artifact,
    replicate_seeds,
    resolve_jobs,
    run_tasks,
)
from .scenarios import TreeScenarioParams, TreeScenarioResult, run_tree_scenario

__all__ = [
    "SweepRun",
    "confidence_interval",
    "plan_sweep_tasks",
    "render_series",
    "render_table",
    "replicate_scenario",
    "result_from_dict",
    "result_to_dict",
    "run_many",
    "run_scenario_task",
    "run_sweep",
    "summarize",
    "sweep_scenario",
]


def result_to_dict(result: TreeScenarioResult) -> Dict[str, Any]:
    """A :class:`TreeScenarioResult` as a JSON-ready artifact payload.

    ``seed`` is surfaced top-level (it also lives inside ``params``) so
    artifact consumers can group replications without digging into the
    parameter dict; the id lists make the payload a lossless round trip
    through :func:`result_from_dict`.
    """
    return {
        "params": asdict(result.params),
        "seed": result.params.seed,
        "scheduler": result.params.scheduler,
        "times": list(result.times),
        "legit_pct": list(result.legit_pct),
        "attack_pct": list(result.attack_pct),
        "legit_pct_during_attack": result.legit_pct_during_attack,
        "defense_stats": dict(result.defense_stats),
        "capture_times": {str(k): v for k, v in result.capture_times.items()},
        "false_captures": result.false_captures,
        "attacker_ids": list(result.attacker_ids),
        "client_ids": list(result.client_ids),
        "events_processed": result.events_processed,
        "amplifier_ids": list(result.amplifier_ids),
        "reflector_captures": result.reflector_captures,
        "traced_sources": {str(k): list(v) for k, v in result.traced_sources.items()},
    }


def result_from_dict(d: Dict[str, Any]) -> TreeScenarioResult:
    """Inverse of :func:`result_to_dict` (pool workers ship dicts)."""
    return TreeScenarioResult(
        params=TreeScenarioParams(**d["params"]),
        times=list(d["times"]),
        legit_pct=list(d["legit_pct"]),
        attack_pct=list(d["attack_pct"]),
        legit_pct_during_attack=d["legit_pct_during_attack"],
        defense_stats=dict(d["defense_stats"]),
        capture_times={int(k): v for k, v in d["capture_times"].items()},
        false_captures=d["false_captures"],
        attacker_ids=list(d.get("attacker_ids", ())),
        client_ids=list(d.get("client_ids", ())),
        events_processed=d["events_processed"],
        amplifier_ids=list(d.get("amplifier_ids", ())),
        reflector_captures=d.get("reflector_captures", 0),
        traced_sources={
            int(k): list(v) for k, v in d.get("traced_sources", {}).items()
        },
    )


def _stream_config_for(stream: Optional[Dict[str, Any]], task_id: str):
    """Per-task :class:`~repro.obs.stream.StreamConfig` (or None).

    ``stream`` is the plain-dict form that crosses the pool's pickle
    boundary: ``{"dir": ..., "interval": ..., "wall_cap": ...}`` — each
    task gets its own ``<task>.stream.jsonl`` under ``dir``, which is
    also where the supervisor maintains ``pool.status.json``.
    """
    if not stream:
        return None
    from ..obs.stream import StreamConfig, stream_path_for

    kwargs: Dict[str, Any] = {}
    if stream.get("interval") is not None:
        kwargs["interval"] = float(stream["interval"])
    if "wall_cap" in stream:
        kwargs["wall_cap"] = stream["wall_cap"]
    return StreamConfig(
        path=stream_path_for(stream["dir"], task_id), **kwargs
    )


def run_scenario_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool task function: one scenario run -> JSON-ready envelope.

    Module-level so worker processes can unpickle it by reference.
    ``payload`` is ``{"params": TreeScenarioParams, "telemetry": bool,
    "task": str}`` plus an optional ``"stream"`` dict (see
    :func:`_stream_config_for`) that arms a live per-task telemetry
    stream; when telemetry is requested the worker builds its
    own :class:`~repro.obs.Telemetry` and ships the artifact dict back
    for the parent to merge (a live telemetry cannot cross the process
    boundary — its span clock closes over the worker's simulator).
    The run is bracketed with ``pool_task_start`` / ``pool_task_finish``
    journal events, mirrored exactly by :func:`run_many`'s serial path
    so serial and pool journals stay byte-identical.
    """
    from ..obs import Telemetry  # local import keeps workers lean

    params: TreeScenarioParams = payload["params"]
    requested = params
    if params.shards > 1 and params.shard_exec == "processes":
        # A pool worker is already one process per task; forking shard
        # workers underneath it would oversubscribe the machine.  Inline
        # sharding is journal-identical, so demoting is result-neutral —
        # the result keeps the *requested* params so serial and pooled
        # sweeps still ship byte-identical artifacts.
        params = replace(params, shard_exec="inline")
    telemetry = Telemetry() if payload.get("telemetry") else None
    if telemetry is not None:
        # at=0.0: the scenario's simulator clock starts there; a serial
        # run's shared clock would otherwise read the *previous*
        # scenario's final time here.
        telemetry.journal.record(
            "pool_task_start", at=0.0, task=payload.get("task")
        )
    stream = _stream_config_for(
        payload.get("stream"), str(payload.get("task") or "run")
    )
    result = run_tree_scenario(
        params,
        telemetry=telemetry,
        stream=stream,
        profile=bool(payload.get("profile")) and telemetry is not None,
    )
    if telemetry is not None:
        telemetry.journal.record("pool_task_finish", task=payload.get("task"))
    if params is not requested:
        result.params = requested
    return {
        "result": result_to_dict(result),
        "telemetry": telemetry.artifact() if telemetry is not None else None,
    }


def _scenario_tasks(
    named_params: Sequence[tuple],
    instrument: Callable[[Any], bool],
    task_fn: Callable[[Dict[str, Any]], Dict[str, Any]],
    stream: Optional[Dict[str, Any]] = None,
    profile: bool = False,
) -> List[Task]:
    return [
        Task(
            task_id=str(key),
            fn=task_fn,
            payload={
                "params": params,
                "telemetry": bool(instrument(key)),
                "task": str(key),
                "stream": stream,
                "profile": profile,
            },
        )
        for key, params in named_params
    ]


def _raise_on_quarantine(report: PoolReport, what: str) -> None:
    if not report.ok:
        details = "; ".join(
            f"{t}: {report.outcomes[t].error}".splitlines()[0]
            for t in report.quarantined
        )
        raise RuntimeError(f"{what}: {len(report.quarantined)} task(s) quarantined ({details})")


def run_many(
    named_params: Dict[Any, TreeScenarioParams],
    jobs: Optional[int] = None,
    pool_config: Optional[PoolConfig] = None,
    telemetry: Any = None,
    instrument: Optional[Callable[[Any], bool]] = None,
    stream: Optional[Dict[str, Any]] = None,
    profile: bool = False,
) -> Dict[Any, TreeScenarioResult]:
    """Run several named scenarios, serially or on the pool.

    ``instrument(key)`` selects which runs feed ``telemetry`` (default:
    all, when a telemetry is given).  Worker telemetry artifacts are
    absorbed in ``named_params`` order, so the consolidated artifact is
    identical to a serial instrumented run.  ``stream`` (a
    ``{"dir", "interval", "wall_cap"}`` dict) arms one live telemetry
    stream per run under ``dir`` — on the pool the supervisor also
    maintains the merged ``pool.status.json`` view there.
    ``profile=True`` enables per-dimension engine attribution on every
    instrumented run; worker dimension tables merge into ``telemetry``
    alongside the scalar engine counters, so a pooled sweep aggregates
    per-task profiles exactly like a serial one.  Raises if any run is
    quarantined — figures need every cell.
    """
    if instrument is None:
        instrument = lambda key: telemetry is not None
    jobs = pool_config.jobs if pool_config is not None else resolve_jobs(jobs)
    if jobs <= 1 and pool_config is None:
        out_serial: Dict[Any, TreeScenarioResult] = {}
        for key, params in named_params.items():
            run_telemetry = telemetry if instrument(key) else None
            if run_telemetry is not None:
                run_telemetry.journal.record(
                    "pool_task_start", at=0.0, task=str(key)
                )
            out_serial[key] = run_tree_scenario(
                params,
                telemetry=run_telemetry,
                stream=_stream_config_for(stream, str(key)),
                profile=profile and run_telemetry is not None,
            )
            if run_telemetry is not None:
                run_telemetry.journal.record("pool_task_finish", task=str(key))
        return out_serial
    tasks = _scenario_tasks(
        [(k, p) for k, p in named_params.items()],
        instrument if telemetry is not None else (lambda key: False),
        run_scenario_task,
        stream=stream,
        profile=profile,
    )
    config = pool_config or PoolConfig(jobs=jobs)
    if stream and config.status_dir is None:
        config.status_dir = stream["dir"]
    report = run_tasks(tasks, config)
    _raise_on_quarantine(report, "scenario batch")
    out: Dict[Any, TreeScenarioResult] = {}
    for key, task in zip(named_params, tasks):
        envelope = report.value(task.task_id)
        out[key] = result_from_dict(envelope["result"])
        if telemetry is not None and envelope.get("telemetry"):
            absorb_artifact(telemetry, envelope["telemetry"])
    return out


def replicate_scenario(
    params: TreeScenarioParams,
    seeds: Optional[Sequence[int]] = None,
    n: Optional[int] = None,
    jobs: Optional[int] = None,
    pool_config: Optional[PoolConfig] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> List[TreeScenarioResult]:
    """Run the same scenario under several seeds.

    With ``seeds=None``, ``n`` replication seeds are derived
    deterministically from ``params.seed`` (SHA-256 keyed on the
    replicate index) — and every result records the seed that produced
    it (``result.params.seed``, surfaced by :func:`result_to_dict`).
    """
    if seeds is None:
        if n is None:
            raise ValueError("need seeds or n")
        seeds = replicate_seeds(params.seed, n)
    seeds = [int(s) for s in seeds]
    jobs = pool_config.jobs if pool_config is not None else resolve_jobs(jobs)
    if jobs <= 1 and pool_config is None and checkpoint is None:
        return [run_tree_scenario(replace(params, seed=s)) for s in seeds]
    tasks = [
        Task(
            task_id=f"seed={s}",
            fn=run_scenario_task,
            payload={"params": replace(params, seed=s), "telemetry": False},
        )
        for s in seeds
    ]
    report = run_tasks(
        tasks, pool_config or PoolConfig(jobs=jobs), checkpoint=checkpoint
    )
    _raise_on_quarantine(report, "replication")
    return [
        result_from_dict(report.value(t.task_id)["result"]) for t in tasks
    ]


def plan_sweep_tasks(
    base: TreeScenarioParams,
    field_name: str,
    values: Sequence[Any],
    seeds: Sequence[int],
    task_fn: Callable[[Dict[str, Any]], Dict[str, Any]] = run_scenario_task,
    telemetry: bool = False,
    stream: Optional[Dict[str, Any]] = None,
    profile: bool = False,
) -> List[Task]:
    """One task per (value, seed) pair, under stable ids.

    Ids are pure functions of the sweep coordinates — never of order or
    worker — so checkpoints match across runs and duplicate (value,
    seed) pairs are rejected by the pool.  ``telemetry=True`` makes
    every worker build and ship back a telemetry artifact; ``stream``
    arms one live per-task telemetry stream under its ``dir``;
    ``profile=True`` adds per-dimension engine attribution to each
    instrumented task's artifact.
    """
    if not hasattr(base, field_name):
        raise ValueError(f"unknown sweep field {field_name!r}")
    return [
        Task(
            task_id=f"{field_name}={v!r}/seed={int(s)}",
            fn=task_fn,
            payload={
                "params": replace(base, **{field_name: v}, seed=int(s)),
                "telemetry": telemetry,
                "task": f"{field_name}={v!r}/seed={int(s)}",
                "stream": stream,
                "profile": profile,
            },
        )
        for v in values
        for s in seeds
    ]


@dataclass
class SweepRun:
    """A completed (possibly partially failed) sweep."""

    base: TreeScenarioParams
    field_name: str
    values: List[Any]
    seeds: List[int]
    tasks: List[Task]
    report: PoolReport

    @property
    def results(self) -> Dict[Any, List[TreeScenarioResult]]:
        """value -> results in seed order; quarantined points omitted."""
        out: Dict[Any, List[TreeScenarioResult]] = {v: [] for v in self.values}
        for v, task_ids in zip(self.values, self._ids_by_value()):
            for task_id in task_ids:
                outcome = self.report.outcomes[task_id]
                if outcome.ok:
                    out[v].append(result_from_dict(outcome.value["result"]))
        return out

    def _ids_by_value(self) -> List[List[str]]:
        n = len(self.seeds)
        ids = [t.task_id for t in self.tasks]
        return [ids[i * n : (i + 1) * n] for i in range(len(self.values))]

    def artifact(self) -> Dict[str, Any]:
        """JSON-ready sweep artifact: params, per-task outcomes (in task
        order), quarantine/resume bookkeeping.  Deterministic modulo
        wall-time fields (see :func:`repro.parallel.strip_volatile`)."""
        return {
            "schema": "repro.sweep/1",
            "field": self.field_name,
            "values": list(self.values),
            "seeds": list(self.seeds),
            "base_params": asdict(self.base),
            **self.report.as_dict(),
        }


def run_sweep(
    base: TreeScenarioParams,
    field_name: str,
    values: Iterable[Any],
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = None,
    pool_config: Optional[PoolConfig] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    task_fn: Callable[[Dict[str, Any]], Dict[str, Any]] = run_scenario_task,
    on_outcome: Optional[Callable[[Any], None]] = None,
    telemetry: Any = None,
    stream: Optional[Dict[str, Any]] = None,
    profile: bool = False,
) -> SweepRun:
    """Sweep one parameter over the pool; quarantine-tolerant.

    Unlike :func:`sweep_scenario` this never raises on a poisoned
    point: the :class:`SweepRun` reports quarantined tasks and its
    ``report.exit_code`` reflects partial failure.  With a
    ``telemetry``, every task is instrumented and worker artifacts are
    absorbed in *task* order (never completion order), so the merged
    metrics/spans/journal match a serial instrumented sweep.  With a
    ``stream`` dict every task writes a live ``<task>.stream.jsonl``
    under ``stream["dir"]`` and the supervisor maintains the merged
    ``pool.status.json`` there (watch with ``repro watch DIR``).
    """
    values = list(values)
    seeds = [int(s) for s in seeds]
    tasks = plan_sweep_tasks(
        base,
        field_name,
        values,
        seeds,
        task_fn=task_fn,
        telemetry=telemetry is not None,
        stream=stream,
        profile=profile,
    )
    config = pool_config or PoolConfig(jobs=resolve_jobs(jobs))
    if stream and config.status_dir is None:
        config.status_dir = stream["dir"]
    report = run_tasks(tasks, config, checkpoint=checkpoint, on_outcome=on_outcome)
    if telemetry is not None:
        for task in tasks:
            outcome = report.outcomes.get(task.task_id)
            if outcome is not None and outcome.ok and outcome.value.get("telemetry"):
                absorb_artifact(telemetry, outcome.value["telemetry"])
    return SweepRun(
        base=base,
        field_name=field_name,
        values=values,
        seeds=seeds,
        tasks=tasks,
        report=report,
    )


def sweep_scenario(
    base: TreeScenarioParams,
    field_name: str,
    values: Iterable[Any],
    seeds: Sequence[int] = (0,),
    jobs: Optional[int] = None,
    pool_config: Optional[PoolConfig] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> Dict[Any, List[TreeScenarioResult]]:
    """Sweep one parameter, replicating each point over ``seeds``.

    Raises if any task ends quarantined; use :func:`run_sweep` for
    partial-failure tolerance and the machine-readable sweep artifact.
    """
    values = list(values)
    jobs = pool_config.jobs if pool_config is not None else resolve_jobs(jobs)
    if jobs <= 1 and pool_config is None and checkpoint is None:
        out: Dict[Any, List[TreeScenarioResult]] = {}
        for v in values:
            params = replace(base, **{field_name: v})
            out[v] = replicate_scenario(params, seeds)
        return out
    run = run_sweep(
        base,
        field_name,
        values,
        seeds,
        pool_config=pool_config or PoolConfig(jobs=jobs),
        checkpoint=checkpoint,
    )
    _raise_on_quarantine(run.report, f"sweep over {field_name}")
    return run.results


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / max of a metric across replications."""
    if not values:
        return {"mean": float("nan"), "std": float("nan"), "min": float("nan"), "max": float("nan"), "n": 0}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": len(arr),
    }


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple:
    """(low, high) t-based confidence interval on the mean.

    Falls back to the normal quantile when scipy is unavailable;
    returns (mean, mean) for a single sample.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1) (got {confidence})")
    if not values:
        raise ValueError("need at least one sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    n = len(arr)
    if n == 1:
        return (mean, mean)
    sem = float(arr.std(ddof=1)) / np.sqrt(n)
    try:
        from scipy import stats

        t = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        t = 1.96
    return (mean - t * sem, mean + t * sem)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with aligned columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    label: str, xs: Sequence[float], ys: Sequence[float], unit: str = ""
) -> str:
    """One named (x, y) series as compact text."""
    pairs = "  ".join(f"{x:g}:{y:.2f}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label}{suffix}: {pairs}"


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
