"""Experiment scenarios, validation harness, and batch runners."""

from .runner import (
    confidence_interval,
    render_series,
    render_table,
    replicate_scenario,
    summarize,
    sweep_scenario,
)
from .scenarios import (
    PARAMETER_TABLE,
    TreeScenarioParams,
    TreeScenarioResult,
    paper_scale,
    run_tree_scenario,
)
from .validation import (
    ValidationOutcome,
    ValidationParams,
    run_trial,
    run_validation,
)

__all__ = [
    "PARAMETER_TABLE",
    "confidence_interval",
    "TreeScenarioParams",
    "TreeScenarioResult",
    "ValidationOutcome",
    "ValidationParams",
    "paper_scale",
    "render_series",
    "render_table",
    "replicate_scenario",
    "run_tree_scenario",
    "run_trial",
    "run_validation",
    "summarize",
    "sweep_scenario",
]
